//! Histogram-based gradient-boosted decision trees with leaf-wise
//! (best-first) growth — the LightGBM analogue the paper's model zoo
//! includes.
//!
//! Training follows the LightGBM recipe: features are pre-binned into
//! quantile histograms, each boosting iteration fits a regression tree on
//! the logistic-loss gradients/hessians, and trees grow *leaf-wise*: the
//! leaf with the globally best split gain is split next, until the leaf
//! budget is exhausted.

use hmd_tabular::Dataset;

use hmd_nn::sigmoid;

use crate::model::{validate_training_set, Classifier};
use crate::MlError;

/// Hyper-parameters for [`Gbdt`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct GbdtConfig {
    /// Boosting iterations (trees).
    pub n_iters: usize,
    /// Shrinkage applied to each tree's output.
    pub learning_rate: f64,
    /// Maximum leaves per tree (leaf-wise growth budget).
    pub num_leaves: usize,
    /// Histogram bins per feature.
    pub max_bins: usize,
    /// Minimum samples per leaf.
    pub min_data_in_leaf: usize,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Minimum split gain.
    pub min_gain: f64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_iters: 80,
            learning_rate: 0.1,
            num_leaves: 31,
            max_bins: 64,
            min_data_in_leaf: 5,
            lambda: 1.0,
            min_gain: 1e-6,
        }
    }
}

#[derive(Clone, Debug)]
enum GbNode {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

#[derive(Clone, Debug, Default)]
struct GbTree {
    nodes: Vec<GbNode>,
}

impl GbTree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                GbNode::Leaf { value } => return *value,
                GbNode::Split { feature, threshold, left, right } => {
                    node = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// A leaf under construction during leaf-wise growth.
struct GrowingLeaf {
    /// Row indices in this leaf.
    rows: Vec<usize>,
    /// Node index in the tree's arena.
    node: usize,
    /// Cached best split: (gain, feature, bin, threshold).
    best: Option<(f64, usize, usize, f64)>,
}

/// LightGBM-style gradient boosting for binary classification.
///
/// # Example
///
/// ```
/// use hmd_ml::{Classifier, Gbdt};
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), hmd_ml::MlError> {
/// let mut d = Dataset::new(vec!["x".into()])?;
/// for i in 0..60 {
///     let label = if i < 30 { Class::Benign } else { Class::Malware };
///     d.push(&[i as f64], label)?;
/// }
/// let targets = d.binary_targets(Class::is_attack);
/// let mut gbm = Gbdt::new();
/// gbm.fit(&d, &targets)?;
/// assert!(gbm.predict_proba_row(&[55.0])? > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Gbdt {
    config: GbdtConfig,
    trees: Vec<GbTree>,
    /// Per-feature ascending bin thresholds (upper edges).
    bin_edges: Vec<Vec<f64>>,
    base_score: f64,
    n_features: usize,
    fitted: bool,
}

impl Default for Gbdt {
    fn default() -> Self {
        Self::new()
    }
}

impl Gbdt {
    /// A booster with default hyper-parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(GbdtConfig::default())
    }

    /// A booster with explicit hyper-parameters.
    #[must_use]
    pub fn with_config(config: GbdtConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
            bin_edges: Vec::new(),
            base_score: 0.0,
            n_features: 0,
            fitted: false,
        }
    }

    /// Number of fitted trees.
    #[must_use]
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    fn compute_bin_edges(&mut self, data: &Dataset) -> Result<(), MlError> {
        self.bin_edges.clear();
        for f in 0..data.n_features() {
            let mut col = data.column(f)?;
            col.sort_by(f64::total_cmp);
            col.dedup();
            let edges: Vec<f64> = if col.len() <= self.config.max_bins {
                // edge between each pair of adjacent distinct values
                col.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
            } else {
                (1..self.config.max_bins)
                    .map(|b| {
                        let pos = b * (col.len() - 1) / self.config.max_bins;
                        (col[pos] + col[pos + 1]) / 2.0
                    })
                    .collect()
            };
            let mut edges = edges;
            edges.dedup();
            self.bin_edges.push(edges);
        }
        Ok(())
    }

    fn bin_of(&self, feature: usize, x: f64) -> usize {
        self.bin_edges[feature].partition_point(|&e| e < x)
    }

    fn raw_score(&self, row: &[f64]) -> f64 {
        let mut score = self.base_score;
        for tree in &self.trees {
            score += self.config.learning_rate * tree.predict(row);
        }
        score
    }

    /// Finds the best split for one leaf via feature histograms.
    fn best_split(
        &self,
        binned: &[Vec<u16>],
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
    ) -> Option<(f64, usize, usize, f64)> {
        let total_g: f64 = rows.iter().map(|&i| grad[i]).sum();
        let total_h: f64 = rows.iter().map(|&i| hess[i]).sum();
        let lambda = self.config.lambda;
        let parent = total_g * total_g / (total_h + lambda);
        let mut best: Option<(f64, usize, usize, f64)> = None;
        #[allow(clippy::needless_range_loop)] // f indexes three parallel tables
        for f in 0..self.n_features {
            let n_bins = self.bin_edges[f].len() + 1;
            if n_bins < 2 {
                continue;
            }
            let mut hist_g = vec![0.0; n_bins];
            let mut hist_h = vec![0.0; n_bins];
            let mut hist_n = vec![0usize; n_bins];
            for &i in rows {
                let b = binned[f][i] as usize;
                hist_g[b] += grad[i];
                hist_h[b] += hess[i];
                hist_n[b] += 1;
            }
            let mut left_g = 0.0;
            let mut left_h = 0.0;
            let mut left_n = 0usize;
            for b in 0..n_bins - 1 {
                left_g += hist_g[b];
                left_h += hist_h[b];
                left_n += hist_n[b];
                let right_n = rows.len() - left_n;
                if left_n < self.config.min_data_in_leaf
                    || right_n < self.config.min_data_in_leaf
                {
                    continue;
                }
                let right_g = total_g - left_g;
                let right_h = total_h - left_h;
                let gain = 0.5
                    * (left_g * left_g / (left_h + lambda)
                        + right_g * right_g / (right_h + lambda)
                        - parent);
                if gain > self.config.min_gain
                    && best.is_none_or(|(g, _, _, _)| gain > g)
                {
                    best = Some((gain, f, b, self.bin_edges[f][b]));
                }
            }
        }
        best
    }

    fn leaf_value(&self, grad: &[f64], hess: &[f64], rows: &[usize]) -> f64 {
        let g: f64 = rows.iter().map(|&i| grad[i]).sum();
        let h: f64 = rows.iter().map(|&i| hess[i]).sum();
        -g / (h + self.config.lambda)
    }
}

impl Classifier for Gbdt {
    fn name(&self) -> &'static str {
        "LightGBM"
    }

    fn fit(&mut self, data: &Dataset, targets: &[f64]) -> Result<(), MlError> {
        validate_training_set(data, targets)?;
        if self.config.n_iters == 0 || self.config.num_leaves < 2 || self.config.max_bins < 2 {
            return Err(MlError::InvalidHyperparameter(
                "iterations, leaves and bins must allow at least one split",
            ));
        }
        let n = data.len();
        self.n_features = data.n_features();
        self.compute_bin_edges(data)?;

        // pre-bin the whole training matrix (column-major, u16 bins)
        let mut binned: Vec<Vec<u16>> = Vec::with_capacity(self.n_features);
        for f in 0..self.n_features {
            let col = data.column(f)?;
            binned.push(col.iter().map(|&x| self.bin_of(f, x) as u16).collect());
        }

        let pos = targets.iter().sum::<f64>() / n as f64;
        self.base_score = (pos / (1.0 - pos)).ln();
        let mut raw: Vec<f64> = vec![self.base_score; n];
        self.trees.clear();

        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        for _ in 0..self.config.n_iters {
            for i in 0..n {
                let p = sigmoid(raw[i]);
                grad[i] = p - targets[i];
                hess[i] = (p * (1.0 - p)).max(1e-12);
            }

            let mut tree = GbTree::default();
            tree.nodes.push(GbNode::Leaf { value: 0.0 });
            let all_rows: Vec<usize> = (0..n).collect();
            let root_best = self.best_split(&binned, &grad, &hess, &all_rows);
            let mut leaves = vec![GrowingLeaf { rows: all_rows, node: 0, best: root_best }];

            let mut n_leaves = 1;
            while n_leaves < self.config.num_leaves {
                // leaf-wise: globally best-gain leaf splits next
                let Some(leaf_idx) = leaves
                    .iter()
                    .enumerate()
                    .filter_map(|(i, l)| l.best.map(|(g, ..)| (i, g)))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(i, _)| i)
                else {
                    break;
                };
                let (_, feature, bin, threshold) =
                    leaves[leaf_idx].best.expect("selected leaf has a split");
                let rows = std::mem::take(&mut leaves[leaf_idx].rows);
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                    rows.into_iter().partition(|&i| (binned[feature][i] as usize) <= bin);

                let node = leaves[leaf_idx].node;
                let left_node = tree.nodes.len();
                tree.nodes.push(GbNode::Leaf { value: 0.0 });
                let right_node = tree.nodes.len();
                tree.nodes.push(GbNode::Leaf { value: 0.0 });
                tree.nodes[node] =
                    GbNode::Split { feature, threshold, left: left_node, right: right_node };

                let left_best = self.best_split(&binned, &grad, &hess, &left_rows);
                let right_best = self.best_split(&binned, &grad, &hess, &right_rows);
                leaves[leaf_idx] =
                    GrowingLeaf { rows: left_rows, node: left_node, best: left_best };
                leaves.push(GrowingLeaf { rows: right_rows, node: right_node, best: right_best });
                n_leaves += 1;
            }

            // finalize leaf values and update raw scores
            for leaf in &leaves {
                let value = self.leaf_value(&grad, &hess, &leaf.rows);
                tree.nodes[leaf.node] = GbNode::Leaf { value };
                for &i in &leaf.rows {
                    raw[i] += self.config.learning_rate * value;
                }
            }
            self.trees.push(tree);
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<f64, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: row.len(),
            });
        }
        Ok(sigmoid(self.raw_score(row)))
    }

    fn size_bytes(&self) -> usize {
        // ~32 bytes per node plus bin-edge tables
        let nodes: usize = self.trees.iter().map(|t| t.nodes.len()).sum();
        let edges: usize = self.bin_edges.iter().map(Vec::len).sum();
        nodes * 32 + edges * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use hmd_tabular::Class;
    use hmd_util::rng::prelude::*;

    fn blobs(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for _ in 0..n {
            let benign = [rng.random_range(-1.0..0.5), rng.random_range(-1.0..0.5)];
            let attack = [rng.random_range(0.3..1.8), rng.random_range(0.3..1.8)];
            d.push(&benign, Class::Benign).unwrap();
            d.push(&attack, Class::Malware).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        (d, t)
    }

    #[test]
    fn learns_overlapping_blobs() {
        let (train, tt) = blobs(200, 1);
        let (test, te) = blobs(200, 2);
        let mut gbm = Gbdt::new();
        gbm.fit(&train, &tt).unwrap();
        let m = evaluate(&gbm, &test, &te).unwrap();
        assert!(m.accuracy > 0.88, "accuracy {}", m.accuracy);
        assert!(m.auc > 0.93, "auc {}", m.auc);
    }

    #[test]
    fn more_iterations_reduce_training_loss() {
        let (d, t) = blobs(150, 3);
        let acc_at = |iters| {
            let mut g = Gbdt::with_config(GbdtConfig { n_iters: iters, ..GbdtConfig::default() });
            g.fit(&d, &t).unwrap();
            evaluate(&g, &d, &t).unwrap().accuracy
        };
        assert!(acc_at(60) >= acc_at(2) - 1e-9);
    }

    #[test]
    fn leaf_budget_bounds_tree_size() {
        let (d, t) = blobs(200, 4);
        let mut g = Gbdt::with_config(GbdtConfig { num_leaves: 4, ..GbdtConfig::default() });
        g.fit(&d, &t).unwrap();
        for tree in &g.trees {
            let leaves =
                tree.nodes.iter().filter(|n| matches!(n, GbNode::Leaf { .. })).count();
            assert!(leaves <= 4, "tree has {leaves} leaves");
        }
    }

    #[test]
    fn binning_respects_max_bins() {
        let (d, t) = blobs(300, 5);
        let mut g = Gbdt::with_config(GbdtConfig { max_bins: 8, ..GbdtConfig::default() });
        g.fit(&d, &t).unwrap();
        for edges in &g.bin_edges {
            assert!(edges.len() < 8);
        }
    }

    #[test]
    fn errors_on_misuse() {
        let g = Gbdt::new();
        assert_eq!(g.predict_proba_row(&[0.0]).unwrap_err(), MlError::NotFitted);
        let (d, t) = blobs(30, 6);
        let mut bad =
            Gbdt::with_config(GbdtConfig { num_leaves: 1, ..GbdtConfig::default() });
        assert!(matches!(bad.fit(&d, &t), Err(MlError::InvalidHyperparameter(_))));
        let mut g = Gbdt::new();
        g.fit(&d, &t).unwrap();
        assert!(matches!(
            g.predict_proba_row(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn base_score_matches_class_prior() {
        let (d, t) = blobs(100, 7);
        let mut g = Gbdt::with_config(GbdtConfig { n_iters: 1, ..GbdtConfig::default() });
        g.fit(&d, &t).unwrap();
        // balanced classes → prior logit ≈ 0
        assert!(g.base_score.abs() < 1e-9);
    }
}
