//! The paper's neural network: 2 convolutional + 3 fully-connected
//! layers.
//!
//! The paper includes this NN alongside the five classical models and
//! finds it *pathological* on 4-wide tabular HPC data — flagging
//! everything as malware under attack and everything as benign after
//! adversarial training — feeding the "deep learning is not all you need
//! for tabular data" discussion it cites. The architecture is faithfully
//! reproduced so those failure modes can be studied.

use hmd_nn::{Conv1d, Dense, Loss, Optimizer, Relu, Sequential, Tensor};
use hmd_tabular::Dataset;
use hmd_util::rng::prelude::*;

use crate::model::{validate_training_set, Classifier, PredictScratch};
use crate::MlError;

/// Hyper-parameters for [`ConvNet`].
#[derive(Clone, Debug, PartialEq)]
pub struct ConvNetConfig {
    /// Channels of the first conv layer.
    pub conv1_channels: usize,
    /// Channels of the second conv layer.
    pub conv2_channels: usize,
    /// Convolution kernel width.
    pub kernel: usize,
    /// Widths of the first two FC layers (the third FC is the logit head).
    pub fc: [usize; 2],
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initialization / shuffling seed.
    pub seed: u64,
}

impl Default for ConvNetConfig {
    fn default() -> Self {
        Self {
            conv1_channels: 8,
            conv2_channels: 16,
            kernel: 2,
            fc: [32, 16],
            learning_rate: 3e-3,
            epochs: 60,
            batch_size: 32,
            seed: 23,
        }
    }
}

/// The 2-conv + 3-FC network treating the HPC vector as a length-d,
/// single-channel sequence.
///
/// # Example
///
/// ```
/// use hmd_ml::{Classifier, ConvNet};
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), hmd_ml::MlError> {
/// let names: Vec<String> = (0..4).map(|i| format!("e{i}")).collect();
/// let mut d = Dataset::new(names)?;
/// for i in 0..40 {
///     let v = i as f64 / 40.0;
///     let label = if i < 20 { Class::Benign } else { Class::Malware };
///     d.push(&[v, v, v, v], label)?;
/// }
/// let targets = d.binary_targets(Class::is_attack);
/// let mut nn = ConvNet::new();
/// nn.fit(&d, &targets)?;
/// let p = nn.predict_proba_row(&[0.9, 0.9, 0.9, 0.9])?;
/// assert!((0.0..=1.0).contains(&p));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConvNet {
    config: ConvNetConfig,
    net: Option<Sequential>,
    n_features: usize,
}

impl Default for ConvNet {
    fn default() -> Self {
        Self::new()
    }
}

impl ConvNet {
    /// A network with the paper's architecture and default training
    /// settings.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(ConvNetConfig::default())
    }

    /// A network with explicit hyper-parameters.
    #[must_use]
    pub fn with_config(config: ConvNetConfig) -> Self {
        Self { config, net: None, n_features: 0 }
    }
}

impl Classifier for ConvNet {
    fn name(&self) -> &'static str {
        "NN"
    }

    fn fit(&mut self, data: &Dataset, targets: &[f64]) -> Result<(), MlError> {
        validate_training_set(data, targets)?;
        let d = data.n_features();
        // two valid convolutions shrink the sequence by 2*(kernel-1)
        if d < 2 * (self.config.kernel - 1) + 1 || self.config.kernel < 1 {
            return Err(MlError::InvalidHyperparameter(
                "input too narrow for two convolutions",
            ));
        }
        self.n_features = d;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let len_after1 = d - self.config.kernel + 1;
        let len_after2 = len_after1 - self.config.kernel + 1;
        let flat = self.config.conv2_channels * len_after2;

        let mut net = Sequential::new();
        net.push(Box::new(Conv1d::new(1, self.config.conv1_channels, self.config.kernel, &mut rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Conv1d::new(
            self.config.conv1_channels,
            self.config.conv2_channels,
            self.config.kernel,
            &mut rng,
        )));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Dense::he(flat, self.config.fc[0], &mut rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Dense::he(self.config.fc[0], self.config.fc[1], &mut rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Dense::xavier(self.config.fc[1], 1, &mut rng)));

        let x = Tensor::from_fn(data.len(), d, |r, c| data.row(r).expect("in range")[c]);
        let y = Tensor::from_fn(data.len(), 1, |r, _| targets[r]);
        let mut opt = Optimizer::adam(self.config.learning_rate);
        for _ in 0..self.config.epochs {
            net.train_epoch(
                &x,
                &y,
                Loss::BinaryCrossEntropy,
                &mut opt,
                self.config.batch_size,
                &mut rng,
            );
        }
        self.net = Some(net);
        Ok(())
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<f64, MlError> {
        let net = self.net.as_ref().ok_or(MlError::NotFitted)?;
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: row.len(),
            });
        }
        let logits = net.infer(&Tensor::row_vector(row));
        Ok(hmd_nn::sigmoid(logits.get(0, 0)))
    }

    fn make_scratch(&self, max_rows: usize) -> PredictScratch {
        let nn = self.net.as_ref().map_or_else(hmd_nn::InferScratch::default, |net| {
            hmd_nn::InferScratch::for_net(net, self.n_features, max_rows.max(1))
        });
        PredictScratch { nn, ..PredictScratch::default() }
    }

    fn predict_proba_row_with(
        &self,
        row: &[f64],
        scratch: &mut PredictScratch,
    ) -> Result<f64, MlError> {
        let net = self.net.as_ref().ok_or(MlError::NotFitted)?;
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: row.len(),
            });
        }
        let logits = net.infer_into(row, 1, self.n_features, &mut scratch.nn);
        Ok(hmd_nn::sigmoid(logits[0]))
    }

    fn predict_proba_into(
        &self,
        rows: &[f64],
        width: usize,
        scratch: &mut PredictScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), MlError> {
        crate::model::validate_batch_shape(rows, width)?;
        let net = self.net.as_ref().ok_or(MlError::NotFitted)?;
        if width != self.n_features {
            return Err(MlError::DimensionMismatch { expected: self.n_features, actual: width });
        }
        let logits = net.infer_into(rows, rows.len() / width, width, &mut scratch.nn);
        out.clear();
        out.extend(logits.iter().map(|&l| hmd_nn::sigmoid(l)));
        Ok(())
    }

    fn size_bytes(&self) -> usize {
        self.net.as_ref().map_or(0, Sequential::size_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use hmd_tabular::Class;

    fn four_wide(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let names: Vec<String> = (0..4).map(|i| format!("e{i}")).collect();
        let mut d = Dataset::new(names).unwrap();
        for _ in 0..n {
            let benign: Vec<f64> = (0..4).map(|_| rng.random_range(-1.0..0.4)).collect();
            let attack: Vec<f64> = (0..4).map(|_| rng.random_range(0.2..1.6)).collect();
            d.push(&benign, Class::Benign).unwrap();
            d.push(&attack, Class::Malware).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        (d, t)
    }

    #[test]
    fn architecture_is_two_conv_three_fc() {
        let (d, t) = four_wide(40, 1);
        let mut nn = ConvNet::with_config(ConvNetConfig {
            epochs: 1,
            ..ConvNetConfig::default()
        });
        nn.fit(&d, &t).unwrap();
        // conv(1→8,k2) + relu + conv(8→16,k2) + relu + 3×dense + 2×relu = 9 layers
        assert_eq!(nn.net.as_ref().unwrap().len(), 9);
    }

    #[test]
    fn learns_separable_four_wide_data() {
        let (d, t) = four_wide(150, 2);
        let mut nn = ConvNet::new();
        nn.fit(&d, &t).unwrap();
        let m = evaluate(&nn, &d, &t).unwrap();
        assert!(m.accuracy > 0.9, "accuracy {}", m.accuracy);
    }

    #[test]
    fn rejects_too_narrow_input() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        d.push(&[0.0, 0.0], Class::Benign).unwrap();
        d.push(&[1.0, 1.0], Class::Malware).unwrap();
        let t = d.binary_targets(Class::is_attack);
        let mut nn = ConvNet::with_config(ConvNetConfig {
            kernel: 3,
            ..ConvNetConfig::default()
        });
        assert!(matches!(nn.fit(&d, &t), Err(MlError::InvalidHyperparameter(_))));
    }

    #[test]
    fn errors_before_fit() {
        let nn = ConvNet::new();
        assert_eq!(
            nn.predict_proba_row(&[0.0, 0.0, 0.0, 0.0]).unwrap_err(),
            MlError::NotFitted
        );
    }

    #[test]
    fn model_is_heavier_than_logistic_regression() {
        let (d, t) = four_wide(40, 3);
        let mut nn = ConvNet::with_config(ConvNetConfig {
            epochs: 1,
            ..ConvNetConfig::default()
        });
        nn.fit(&d, &t).unwrap();
        // LR on 4 features is 5 params = 40 bytes; the NN is thousands
        assert!(nn.size_bytes() > 1000);
    }
}
