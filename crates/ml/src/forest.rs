//! Random forest: bagged CART trees with per-split feature subsampling.

use hmd_tabular::Dataset;
use hmd_util::par;
use hmd_util::rng::prelude::*;

use crate::model::{validate_training_set, Classifier};
use crate::tree::{DecisionTree, DecisionTreeConfig};
use crate::MlError;

/// Hyper-parameters for [`RandomForest`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration (its `max_features` is overridden by
    /// `max_features` below).
    pub tree: DecisionTreeConfig,
    /// Features examined per split (`None` = ⌈√d⌉, the usual default).
    pub max_features: Option<usize>,
    /// Seed for bootstraps and feature subsampling.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 60,
            tree: DecisionTreeConfig {
                max_depth: 14,
                min_samples_split: 4,
                min_samples_leaf: 2,
                max_features: None,
            },
            max_features: None,
            seed: 17,
        }
    }
}

/// A bagging ensemble of decision trees; probabilities are averaged over
/// the ensemble.
///
/// # Example
///
/// ```
/// use hmd_ml::{Classifier, RandomForest};
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), hmd_ml::MlError> {
/// let mut d = Dataset::new(vec!["x".into()])?;
/// for i in 0..60 {
///     let label = if i < 30 { Class::Benign } else { Class::Malware };
///     d.push(&[i as f64], label)?;
/// }
/// let targets = d.binary_targets(Class::is_attack);
/// let mut rf = RandomForest::new();
/// rf.fit(&d, &targets)?;
/// assert!(rf.predict_proba_row(&[55.0])? > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RandomForest {
    config: RandomForestConfig,
    trees: Vec<DecisionTree>,
    fitted: bool,
}

impl Default for RandomForest {
    fn default() -> Self {
        Self::new()
    }
}

impl RandomForest {
    /// A forest with default hyper-parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(RandomForestConfig::default())
    }

    /// A forest with explicit hyper-parameters.
    #[must_use]
    pub fn with_config(config: RandomForestConfig) -> Self {
        Self { config, trees: Vec::new(), fitted: false }
    }

    /// Number of fitted trees.
    #[must_use]
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Forest-level feature importances: the mean of the member trees'
    /// normalized gini importances.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before `fit`.
    pub fn feature_importances(&self) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        let mut total: Vec<f64> = Vec::new();
        for tree in &self.trees {
            let imp = tree.feature_importances()?;
            if total.is_empty() {
                total = imp;
            } else {
                for (t, v) in total.iter_mut().zip(imp) {
                    *t += v;
                }
            }
        }
        for t in &mut total {
            *t /= self.trees.len() as f64;
        }
        Ok(total)
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RF"
    }

    fn fit(&mut self, data: &Dataset, targets: &[f64]) -> Result<(), MlError> {
        validate_training_set(data, targets)?;
        if self.config.n_trees == 0 {
            return Err(MlError::InvalidHyperparameter("need at least one tree"));
        }
        let n = data.len();
        let sqrt_features = (data.n_features() as f64).sqrt().ceil() as usize;
        let max_features = self.config.max_features.unwrap_or(sqrt_features).max(1);
        // Bootstrap draws stay on the single sequential RNG stream, so
        // the sampled indices are identical to a sequential fit; only
        // the (independent, per-tree-seeded) tree growing fans out.
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let bootstraps: Vec<Vec<usize>> = (0..self.config.n_trees)
            .map(|_| (0..n).map(|_| rng.random_range(0..n)).collect())
            .collect();
        let tree_config = DecisionTreeConfig {
            max_features: Some(max_features),
            ..self.config.tree
        };
        let seed = self.config.seed;
        self.trees = par::par_map_indexed(&bootstraps, |t, indices| {
            let mut tree = DecisionTree::with_config(tree_config);
            tree.set_seed(seed.wrapping_add(t as u64).wrapping_mul(0x9e37));
            tree.fit_indices(data, targets, indices)?;
            Ok(tree)
        })
        .into_iter()
        .collect::<Result<Vec<DecisionTree>, MlError>>()?;
        self.fitted = true;
        Ok(())
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<f64, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        let mut sum = 0.0;
        for tree in &self.trees {
            sum += tree.predict_proba_row(row)?;
        }
        Ok(sum / self.trees.len() as f64)
    }

    /// Batch voting parallelized over trees: each worker scores the
    /// whole batch against its trees, and per-row vote sums reduce in
    /// tree order — the same accumulation order as the sequential row
    /// path, so results are identical at any thread count.
    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        let summed = par::par_map_reduce(
            &self.trees,
            |tree| -> Result<Vec<f64>, MlError> {
                (0..data.len())
                    .map(|i| tree.predict_proba_row(data.row(i)?))
                    .collect()
            },
            |acc, votes| {
                let (mut acc, votes) = (acc?, votes?);
                for (a, v) in acc.iter_mut().zip(votes) {
                    *a += v;
                }
                Ok(acc)
            },
        )
        .expect("fitted forest has at least one tree")?;
        let n_trees = self.trees.len() as f64;
        Ok(summed.into_iter().map(|s| s / n_trees).collect())
    }

    fn size_bytes(&self) -> usize {
        self.trees.iter().map(Classifier::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use hmd_tabular::Class;

    fn noisy_blobs(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        for _ in 0..n {
            let benign = [
                rng.random_range(-1.0..0.6),
                rng.random_range(-1.0..0.6),
                rng.random_range(-1.0..1.0), // noise feature
            ];
            let attack = [
                rng.random_range(0.4..2.0),
                rng.random_range(0.4..2.0),
                rng.random_range(-1.0..1.0),
            ];
            d.push(&benign, Class::Benign).unwrap();
            d.push(&attack, Class::Malware).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        (d, t)
    }

    #[test]
    fn outperforms_single_tree_on_noisy_data() {
        let (train, t_train) = noisy_blobs(150, 1);
        let (test, t_test) = noisy_blobs(150, 2);
        let mut tree = DecisionTree::new();
        tree.fit(&train, &t_train).unwrap();
        let mut forest = RandomForest::new();
        forest.fit(&train, &t_train).unwrap();
        let m_tree = evaluate(&tree, &test, &t_test).unwrap();
        let m_forest = evaluate(&forest, &test, &t_test).unwrap();
        assert!(
            m_forest.auc >= m_tree.auc - 0.01,
            "forest auc {} vs tree {}",
            m_forest.auc,
            m_tree.auc
        );
        assert!(m_forest.accuracy > 0.85);
    }

    #[test]
    fn probabilities_are_ensemble_averages() {
        let (d, t) = noisy_blobs(100, 3);
        let mut forest = RandomForest::with_config(RandomForestConfig {
            n_trees: 5,
            ..RandomForestConfig::default()
        });
        forest.fit(&d, &t).unwrap();
        assert_eq!(forest.tree_count(), 5);
        let p = forest.predict_proba_row(&[1.5, 1.5, 0.0]).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn deterministic_per_seed() {
        let (d, t) = noisy_blobs(80, 4);
        let fit = |seed| {
            let mut f = RandomForest::with_config(RandomForestConfig {
                n_trees: 8,
                seed,
                ..RandomForestConfig::default()
            });
            f.fit(&d, &t).unwrap();
            f.predict_proba(&d).unwrap()
        };
        assert_eq!(fit(7), fit(7));
        assert_ne!(fit(7), fit(8));
    }

    #[test]
    fn errors_on_misuse() {
        let forest = RandomForest::new();
        assert_eq!(forest.predict_proba_row(&[1.0]).unwrap_err(), MlError::NotFitted);
        let (d, t) = noisy_blobs(40, 5);
        let mut zero = RandomForest::with_config(RandomForestConfig {
            n_trees: 0,
            ..RandomForestConfig::default()
        });
        assert!(matches!(zero.fit(&d, &t), Err(MlError::InvalidHyperparameter(_))));
    }

    #[test]
    fn forest_importances_average_members() {
        let (d, t) = noisy_blobs(100, 9);
        let mut forest = RandomForest::with_config(RandomForestConfig {
            n_trees: 10,
            ..RandomForestConfig::default()
        });
        forest.fit(&d, &t).unwrap();
        let imp = forest.feature_importances().unwrap();
        assert_eq!(imp.len(), 3);
        // the noise feature (index 2) matters least
        assert!(imp[2] < imp[0] && imp[2] < imp[1], "importances {imp:?}");
    }

    #[test]
    fn size_sums_trees() {
        let (d, t) = noisy_blobs(60, 6);
        let mut forest = RandomForest::with_config(RandomForestConfig {
            n_trees: 4,
            ..RandomForestConfig::default()
        });
        forest.fit(&d, &t).unwrap();
        let total: usize = forest.trees.iter().map(Classifier::size_bytes).sum();
        assert_eq!(forest.size_bytes(), total);
        assert!(forest.size_bytes() > 0);
    }
}
