//! k-nearest-neighbours classifier — an extension baseline: the
//! prototypical non-parametric detector, interesting against adversarial
//! samples because its decision surface hugs the training manifold.

use hmd_tabular::Dataset;
use hmd_util::par;

use crate::model::{validate_training_set, Classifier, PredictScratch, PAR_BATCH_MIN};
use crate::MlError;

/// Hyper-parameters for [`Knn`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KnnConfig {
    /// Number of neighbours consulted. Clamped to the training-set size
    /// at fit time; `0` is rejected.
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self { k: 7 }
    }
}

/// A brute-force k-NN classifier with Euclidean distance.
///
/// Probabilities are the positive fraction among the k nearest training
/// rows, distance-weighted.
///
/// # Example
///
/// ```
/// use hmd_ml::{Classifier, Knn};
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), hmd_ml::MlError> {
/// let mut d = Dataset::new(vec!["x".into()])?;
/// for i in 0..30 {
///     let label = if i < 15 { Class::Benign } else { Class::Malware };
///     d.push(&[i as f64], label)?;
/// }
/// let targets = d.binary_targets(Class::is_attack);
/// let mut knn = Knn::new();
/// knn.fit(&d, &targets)?;
/// assert!(knn.predict_proba_row(&[27.0])? > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Knn {
    config: KnnConfig,
    /// Training rows, flattened row-major.
    data: Vec<f64>,
    targets: Vec<f64>,
    n_features: usize,
    /// `config.k` clamped to the training-set size at fit time, so the
    /// neighbour selection can never index past the candidate list.
    effective_k: usize,
    fitted: bool,
}

impl Default for Knn {
    fn default() -> Self {
        Self::new()
    }
}

impl Knn {
    /// A classifier with the default `k`.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(KnnConfig::default())
    }

    /// A classifier with an explicit `k`.
    #[must_use]
    pub fn with_config(config: KnnConfig) -> Self {
        Self {
            config,
            data: Vec::new(),
            targets: Vec::new(),
            n_features: 0,
            effective_k: 0,
            fitted: false,
        }
    }

    /// The configured neighbour count.
    #[must_use]
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// The neighbour count actually consulted after fitting:
    /// `min(k, n_training_rows)`.
    #[must_use]
    pub fn effective_k(&self) -> usize {
        self.effective_k
    }

    /// Scores one (already width-validated) row, reusing `dists` as the
    /// distance scratch buffer so batch prediction stops allocating
    /// O(n) per sample.
    fn score_row(&self, row: &[f64], dists: &mut Vec<(f64, f64)>) -> f64 {
        let n = self.targets.len();
        // (distance², target) for every training row, then partial sort
        dists.clear();
        dists.extend((0..n).map(|i| {
            let base = i * self.n_features;
            let d2: f64 = row
                .iter()
                .zip(&self.data[base..base + self.n_features])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            (d2, self.targets[i])
        }));
        let k = self.effective_k;
        if k < n {
            dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        }
        // inverse-distance weighting over the k nearest
        let mut weight_sum = 0.0;
        let mut positive = 0.0;
        for &(d2, t) in &dists[..k] {
            let w = 1.0 / (d2.sqrt() + 1e-9);
            weight_sum += w;
            positive += w * t;
        }
        positive / weight_sum
    }
}

impl Classifier for Knn {
    fn name(&self) -> &'static str {
        "KNN"
    }

    fn fit(&mut self, data: &Dataset, targets: &[f64]) -> Result<(), MlError> {
        validate_training_set(data, targets)?;
        if self.config.k == 0 {
            return Err(MlError::InvalidHyperparameter("k must be positive"));
        }
        self.effective_k = self.config.k.min(data.len());
        self.n_features = data.n_features();
        self.data = data.raw_data().to_vec();
        self.targets = targets.to_vec();
        self.fitted = true;
        Ok(())
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<f64, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: row.len(),
            });
        }
        let mut dists = Vec::with_capacity(self.targets.len());
        Ok(self.score_row(row, &mut dists))
    }

    /// Batch prediction with one distance scratch buffer per worker,
    /// parallelized over contiguous row chunks (results concatenate in
    /// row order, so output is identical at any thread count).
    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if data.n_features() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: data.n_features(),
            });
        }
        if data.len() < PAR_BATCH_MIN {
            let mut dists = Vec::with_capacity(self.targets.len());
            return (0..data.len())
                .map(|i| Ok(self.score_row(data.row(i)?, &mut dists)))
                .collect();
        }
        let indices: Vec<usize> = (0..data.len()).collect();
        par::par_chunk_map(&indices, |_, chunk| {
            let mut dists = Vec::with_capacity(self.targets.len());
            chunk
                .iter()
                .map(|&i| Ok(self.score_row(data.row(i)?, &mut dists)))
                .collect()
        })
        .into_iter()
        .collect()
    }

    fn make_scratch(&self, max_rows: usize) -> PredictScratch {
        let _ = max_rows;
        PredictScratch {
            dists: Vec::with_capacity(self.targets.len()),
            ..PredictScratch::default()
        }
    }

    fn predict_proba_row_with(
        &self,
        row: &[f64],
        scratch: &mut PredictScratch,
    ) -> Result<f64, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: row.len(),
            });
        }
        Ok(self.score_row(row, &mut scratch.dists))
    }

    fn size_bytes(&self) -> usize {
        // k-NN memorizes the training set
        (self.data.len() + self.targets.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use hmd_tabular::Class;
    use hmd_util::rng::prelude::*;

    fn blobs(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for _ in 0..n {
            let benign = [rng.random_range(-1.0..0.3), rng.random_range(-1.0..0.3)];
            let attack = [rng.random_range(0.3..1.6), rng.random_range(0.3..1.6)];
            d.push(&benign, Class::Benign).unwrap();
            d.push(&attack, Class::Malware).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        (d, t)
    }

    #[test]
    fn classifies_blobs() {
        let (train, tt) = blobs(120, 1);
        let (test, te) = blobs(60, 2);
        let mut knn = Knn::new();
        knn.fit(&train, &tt).unwrap();
        let m = evaluate(&knn, &test, &te).unwrap();
        assert!(m.accuracy > 0.9, "accuracy {}", m.accuracy);
    }

    #[test]
    fn k_one_memorizes_training_points() {
        let (d, t) = blobs(40, 3);
        let mut knn = Knn::with_config(KnnConfig { k: 1 });
        knn.fit(&d, &t).unwrap();
        for (i, &target) in t.iter().enumerate() {
            let p = knn.predict_proba_row(d.row(i).unwrap()).unwrap();
            assert_eq!(p >= 0.5, target == 1.0, "row {i}");
        }
    }

    #[test]
    fn probabilities_are_weighted_fractions() {
        let (d, t) = blobs(50, 4);
        let mut knn = Knn::new();
        knn.fit(&d, &t).unwrap();
        let p = knn.predict_proba_row(&[0.0, 0.0]).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn validates_k() {
        let (d, t) = blobs(5, 5);
        let mut zero = Knn::with_config(KnnConfig { k: 0 });
        assert!(matches!(zero.fit(&d, &t), Err(MlError::InvalidHyperparameter(_))));
        // k beyond the training size clamps to n instead of erroring
        // (and instead of the pre-clamp select_nth panic)
        let mut huge = Knn::with_config(KnnConfig { k: 1000 });
        huge.fit(&d, &t).unwrap();
        assert_eq!(huge.effective_k(), d.len());
        let mut all = Knn::with_config(KnnConfig { k: d.len() });
        all.fit(&d, &t).unwrap();
        let p_huge = huge.predict_proba_row(&[0.1, 0.1]).unwrap();
        let p_all = all.predict_proba_row(&[0.1, 0.1]).unwrap();
        assert_eq!(p_huge, p_all, "clamped k must equal k = n");
    }

    #[test]
    fn batch_prediction_matches_row_prediction() {
        let (train, tt) = blobs(80, 8);
        let (test, _) = blobs(60, 9);
        let mut knn = Knn::new();
        knn.fit(&train, &tt).unwrap();
        let batch = knn.predict_proba(&test).unwrap();
        assert_eq!(batch.len(), test.len());
        for (i, &p) in batch.iter().enumerate() {
            let row = knn.predict_proba_row(test.row(i).unwrap()).unwrap();
            assert_eq!(p, row, "row {i}");
        }
        // and the batch path validates width up front
        let mut narrow = Dataset::new(vec!["x".into()]).unwrap();
        narrow.push(&[0.0], Class::Benign).unwrap();
        assert!(matches!(
            knn.predict_proba(&narrow),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn scratch_row_path_matches_allocating_path() {
        let (train, tt) = blobs(80, 10);
        let (test, _) = blobs(30, 11);
        let mut knn = Knn::new();
        knn.fit(&train, &tt).unwrap();
        let mut scratch = knn.make_scratch(test.len());
        assert!(scratch.dists.capacity() >= train.len());
        for i in 0..test.len() {
            let row = test.row(i).unwrap();
            let p = knn.predict_proba_row_with(row, &mut scratch).unwrap();
            assert_eq!(p, knn.predict_proba_row(row).unwrap(), "row {i}");
        }
    }

    #[test]
    fn errors_on_misuse() {
        let knn = Knn::new();
        assert_eq!(knn.predict_proba_row(&[0.0]).unwrap_err(), MlError::NotFitted);
        let (d, t) = blobs(20, 6);
        let mut knn = Knn::new();
        knn.fit(&d, &t).unwrap();
        assert!(matches!(
            knn.predict_proba_row(&[0.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn size_reflects_memorized_data() {
        let (d, t) = blobs(30, 7);
        let mut knn = Knn::new();
        knn.fit(&d, &t).unwrap();
        assert_eq!(knn.size_bytes(), (60 * 2 + 60) * 8);
    }
}
