//! Classical ML detectors and evaluation metrics for hardware malware
//! detection.
//!
//! The paper's adversarial defense module trains "five different ML
//! models (Random Forest, Decision Tree, Logistic Regression, MLP,
//! LightGBM) and one Neural Network (2 CONV and 3 FC layers)". This
//! crate implements all six from scratch behind one [`Classifier`] trait:
//!
//! | Paper name | Type | Notes |
//! |---|---|---|
//! | RF | [`RandomForest`] | bagged CART trees, √d feature subsampling |
//! | DT | [`DecisionTree`] | CART with gini impurity |
//! | LR | [`LogisticRegression`] | also the LowProFool surrogate + imperceptibility evaluator |
//! | MLP | [`Mlp`] | ReLU hidden layers on the `hmd-nn` substrate |
//! | LightGBM | [`Gbdt`] | histogram bins + leaf-wise growth |
//! | NN | [`ConvNet`] | 2 conv1d + 3 FC layers |
//!
//! [`metrics`] provides the full Table-2 metric suite (ACC, F1, AUC, TPR,
//! FPR, FNR, TNR, precision, recall) and [`model`] the shared evaluation
//! and latency/footprint measurement helpers the constraint controller
//! uses.
//!
//! # Example
//!
//! ```
//! use hmd_ml::{Classifier, RandomForest, model::evaluate};
//! use hmd_tabular::{Class, Dataset};
//!
//! # fn main() -> Result<(), hmd_ml::MlError> {
//! let mut d = Dataset::new(vec!["llc-misses".into()])?;
//! for i in 0..40 {
//!     let label = if i < 20 { Class::Benign } else { Class::Malware };
//!     d.push(&[i as f64], label)?;
//! }
//! let targets = d.binary_targets(Class::is_attack);
//! let mut rf = RandomForest::new();
//! rf.fit(&d, &targets)?;
//! let metrics = evaluate(&rf, &d, &targets)?;
//! assert!(metrics.f1 > 0.9);
//! # Ok(())
//! # }
//! ```

pub mod convnet;
pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod tree;

mod error;

pub use convnet::{ConvNet, ConvNetConfig};
pub use error::MlError;
pub use forest::{RandomForest, RandomForestConfig};
pub use gbdt::{Gbdt, GbdtConfig};
pub use knn::{Knn, KnnConfig};
pub use logreg::{LogisticRegression, LogisticRegressionConfig};
pub use metrics::{roc_auc, BinaryMetrics, ConfusionMatrix};
pub use mlp::{Mlp, MlpConfig};
pub use model::{evaluate, measure_latency_ms, validate_batch_shape, Classifier, PredictScratch};
pub use tree::{DecisionTree, DecisionTreeConfig};

/// Builds the paper's five classical models with default settings, in the
/// order Table 2 lists them (RF, DT, LR, MLP, LightGBM).
#[must_use]
pub fn classical_models() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(RandomForest::new()),
        Box::new(DecisionTree::new()),
        Box::new(LogisticRegression::new()),
        Box::new(Mlp::new()),
        Box::new(Gbdt::new()),
    ]
}

/// Builds all six models (the classical five plus the conv NN).
#[must_use]
pub fn all_models() -> Vec<Box<dyn Classifier>> {
    let mut models = classical_models();
    models.push(Box::new(ConvNet::new()));
    models
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_zoo_matches_paper_order() {
        let names: Vec<&str> = all_models().iter().map(|m| m.name()).collect();
        assert_eq!(names, ["RF", "DT", "LR", "MLP", "LightGBM", "NN"]);
    }
}
