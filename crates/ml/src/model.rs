//! The [`Classifier`] trait every detector implements, plus evaluation
//! and latency/footprint measurement helpers.

use hmd_nn::InferScratch;
use hmd_tabular::Dataset;
use hmd_telemetry::clock;
use hmd_telemetry::metrics::Histogram;
use hmd_util::par;

use crate::metrics::BinaryMetrics;
use crate::MlError;

/// Batch sizes below this predict sequentially — thread launch would
/// cost more than the per-row work it distributes.
pub(crate) const PAR_BATCH_MIN: usize = 64;

/// Caller-owned scratch for allocation-free prediction, sized once per
/// model via [`Classifier::make_scratch`] and reused forever after.
///
/// One struct serves every model family so arenas can be held uniformly
/// as `Vec<PredictScratch>` indexed by model: NN-backed models use the
/// activation ping-pong buffers, k-NN uses the distance buffer, and the
/// tree/linear models (whose predict path never allocates) use none of
/// it.
#[derive(Clone, Debug, Default)]
pub struct PredictScratch {
    /// Activation arenas for NN-backed models (MLP, ConvNet).
    pub nn: InferScratch,
    /// `(squared distance, target)` pairs for the k-NN vote.
    pub dists: Vec<(f64, f64)>,
}

/// A binary malware detector (positive class = attack).
///
/// All five classical models of the paper (RF, DT, LR, MLP, LightGBM-style
/// GBDT) plus the conv NN implement this trait, so the framework, the
/// adversarial attacks, and the RL constraint controller can treat them
/// uniformly as `Box<dyn Classifier>`.
pub trait Classifier: Send + Sync + std::fmt::Debug {
    /// Short model name ("RF", "MLP", …) as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Trains on `data` with per-row binary targets (`1.0` = attack).
    ///
    /// # Errors
    ///
    /// Returns an error for empty/degenerate training sets or mismatched
    /// target lengths.
    fn fit(&mut self, data: &Dataset, targets: &[f64]) -> Result<(), MlError>;

    /// Probability that one feature vector is an attack.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before `fit` and
    /// [`MlError::DimensionMismatch`] for wrong-width rows.
    fn predict_proba_row(&self, row: &[f64]) -> Result<f64, MlError>;

    /// Attack probabilities for a whole dataset.
    ///
    /// Corpus-scale batches are scored in parallel on
    /// [`hmd_util::par`] (rows are independent and results are
    /// order-preserving, so output is identical at any thread count);
    /// small batches stay sequential.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::predict_proba_row`] errors.
    fn predict_proba(&self, data: &Dataset) -> Result<Vec<f64>, MlError> {
        if data.len() < PAR_BATCH_MIN {
            return (0..data.len())
                .map(|i| self.predict_proba_row(data.row(i)?))
                .collect();
        }
        let indices: Vec<usize> = (0..data.len()).collect();
        par::par_map(&indices, |&i| {
            self.predict_proba_row(data.row(i)?)
        })
        .into_iter()
        .collect()
    }

    /// Attack probabilities for a flat row-major batch of `width`-wide
    /// rows (`rows.len()` must be a multiple of `width`).
    ///
    /// The contract is **byte-identical equivalence**: the result must
    /// equal calling [`Self::predict_proba_row`] on each row in order.
    /// The default implementation does exactly that; models backed by a
    /// dense linear-algebra substrate (the MLP) override it to push the
    /// whole batch through one blocked matmul — per-element accumulation
    /// order is row-count-invariant, so the equivalence holds bitwise.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] when `width` is zero or
    /// does not divide `rows.len()`; otherwise propagates
    /// [`Self::predict_proba_row`] errors.
    fn predict_proba_batch(&self, rows: &[f64], width: usize) -> Result<Vec<f64>, MlError> {
        validate_batch_shape(rows, width)?;
        rows.chunks(width).map(|row| self.predict_proba_row(row)).collect()
    }

    /// Hard decision for one feature vector (threshold 0.5).
    ///
    /// # Errors
    ///
    /// Propagates [`Self::predict_proba_row`] errors.
    fn predict_row(&self, row: &[f64]) -> Result<bool, MlError> {
        Ok(self.predict_proba_row(row)? >= 0.5)
    }

    /// Scratch sized for this fitted model at batches of up to
    /// `max_rows` rows — warmup calls this once per model, the serving
    /// hot path reuses the result forever. The default is empty: the
    /// tree/linear models predict without touching scratch. NN-backed
    /// and k-NN models override to preallocate what their predict path
    /// would otherwise allocate per call.
    fn make_scratch(&self, max_rows: usize) -> PredictScratch {
        let _ = max_rows;
        PredictScratch::default()
    }

    /// Attack probability for one row using caller-owned scratch —
    /// bit-identical to [`Self::predict_proba_row`], with zero heap
    /// allocations for every in-tree model once `scratch` came from
    /// [`Self::make_scratch`]. The default ignores the scratch and
    /// delegates (correct for models that never allocate per row).
    ///
    /// # Errors
    ///
    /// As [`Self::predict_proba_row`].
    fn predict_proba_row_with(
        &self,
        row: &[f64],
        scratch: &mut PredictScratch,
    ) -> Result<f64, MlError> {
        let _ = scratch;
        self.predict_proba_row(row)
    }

    /// Attack probabilities for a flat row-major batch, written into
    /// `out` (cleared first) — the allocation-free counterpart of
    /// [`Self::predict_proba_batch`], under the same byte-identical
    /// equivalence contract. `out` must have capacity for one value per
    /// row for the call to stay allocation-free.
    ///
    /// # Errors
    ///
    /// As [`Self::predict_proba_batch`].
    fn predict_proba_into(
        &self,
        rows: &[f64],
        width: usize,
        scratch: &mut PredictScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), MlError> {
        validate_batch_shape(rows, width)?;
        out.clear();
        for row in rows.chunks(width) {
            let p = self.predict_proba_row_with(row, scratch)?;
            out.push(p);
        }
        Ok(())
    }

    /// Approximate in-memory size of the fitted model in bytes — the
    /// memory-footprint axis of the constraint controller.
    fn size_bytes(&self) -> usize;
}

/// Validates the shape of a flat row-major batch.
///
/// # Errors
///
/// Returns [`MlError::DimensionMismatch`] when `width` is zero or does
/// not divide `rows.len()`.
pub fn validate_batch_shape(rows: &[f64], width: usize) -> Result<(), MlError> {
    if width == 0 || !rows.len().is_multiple_of(width) {
        return Err(MlError::DimensionMismatch { expected: width.max(1), actual: rows.len() });
    }
    Ok(())
}

/// Validates a `(data, targets)` pair before training.
///
/// # Errors
///
/// Returns an error when `data` is empty, lengths mismatch, a target is
/// not 0/1, or only one class is present.
pub fn validate_training_set(data: &Dataset, targets: &[f64]) -> Result<(), MlError> {
    if data.is_empty() {
        return Err(MlError::DegenerateTrainingSet("no rows"));
    }
    if targets.len() != data.len() {
        return Err(MlError::InvalidTargets("target length differs from row count"));
    }
    if targets.iter().any(|&t| t != 0.0 && t != 1.0) {
        return Err(MlError::InvalidTargets("targets must be 0.0 or 1.0"));
    }
    let pos = targets.iter().filter(|&&t| t == 1.0).count();
    if pos == 0 || pos == targets.len() {
        return Err(MlError::DegenerateTrainingSet("need both classes present"));
    }
    Ok(())
}

/// Evaluates a fitted classifier on a labeled test set.
///
/// # Errors
///
/// Propagates prediction errors.
pub fn evaluate(
    model: &dyn Classifier,
    data: &Dataset,
    targets: &[f64],
) -> Result<BinaryMetrics, MlError> {
    let scores = model.predict_proba(data)?;
    let truth: Vec<bool> = targets.iter().map(|&t| t == 1.0).collect();
    Ok(BinaryMetrics::from_scores(&scores, &truth))
}

/// Measures mean single-row inference latency in milliseconds — the
/// latency axis of the constraint controller.
///
/// Each call is timed on the telemetry clock and recorded into a local
/// [`Histogram`], whose exact mean is the return value; the same
/// observations also feed the shared `ml.latency_ns.<model>` registry
/// histogram, so an `HMD_TRACE` export reports the very numbers the
/// controller's [`crate::BinaryMetrics`]-adjacent `ModelProfile` saw —
/// one measurement path, two consumers.
///
/// # Errors
///
/// Propagates prediction errors.
///
/// # Panics
///
/// Panics if `data` is empty or `repeats` is zero.
pub fn measure_latency_ms(
    model: &dyn Classifier,
    data: &Dataset,
    repeats: usize,
) -> Result<f64, MlError> {
    assert!(!data.is_empty(), "need at least one row");
    assert!(repeats > 0, "need at least one repeat");
    // warmup
    let _ = model.predict_proba_row(data.row(0)?)?;
    let local = Histogram::standalone();
    let shared = hmd_telemetry::enabled()
        .then(|| hmd_telemetry::metrics::histogram(&format!("ml.latency_ns.{}", model.name())));
    for _ in 0..repeats {
        for i in 0..data.len() {
            let row = data.row(i)?;
            let start = clock::now_ns();
            let _ = model.predict_proba_row(row)?;
            let elapsed = clock::now_ns().saturating_sub(start);
            local.record(elapsed);
            if let Some(shared) = shared {
                shared.record(elapsed);
            }
        }
    }
    let merged = local.merged();
    if hmd_telemetry::enabled() {
        // quantile summary of this measurement run, in milliseconds —
        // the registry histogram above keeps the full distribution
        for (q, v) in [("p50", merged.p50()), ("p95", merged.p95()), ("p99", merged.p99())] {
            hmd_telemetry::metrics::gauge(&format!("ml.latency_ms_{q}.{}", model.name()))
                .set(v / 1e6);
        }
    }
    Ok(merged.mean() / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_tabular::Class;

    /// A trivial threshold stub used to test the trait helpers.
    #[derive(Debug, Default)]
    struct Stub {
        threshold: f64,
        fitted: bool,
    }

    impl Classifier for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }

        fn fit(&mut self, data: &Dataset, targets: &[f64]) -> Result<(), MlError> {
            validate_training_set(data, targets)?;
            self.threshold = 0.5;
            self.fitted = true;
            Ok(())
        }

        fn predict_proba_row(&self, row: &[f64]) -> Result<f64, MlError> {
            if !self.fitted {
                return Err(MlError::NotFitted);
            }
            Ok(if row[0] > self.threshold { 0.9 } else { 0.1 })
        }

        fn size_bytes(&self) -> usize {
            8
        }
    }

    fn data() -> (Dataset, Vec<f64>) {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        for i in 0..10 {
            let label = if i % 2 == 0 { Class::Benign } else { Class::Malware };
            d.push(&[i as f64 / 10.0], label).unwrap();
        }
        let targets = d.binary_targets(Class::is_attack);
        (d, targets)
    }

    #[test]
    fn validation_catches_degenerate_sets() {
        let (d, mut t) = data();
        assert!(validate_training_set(&d, &t).is_ok());
        assert!(matches!(
            validate_training_set(&d, &t[..5]),
            Err(MlError::InvalidTargets(_))
        ));
        t.fill(1.0);
        assert!(matches!(
            validate_training_set(&d, &t),
            Err(MlError::DegenerateTrainingSet(_))
        ));
        let empty = Dataset::new(vec!["x".into()]).unwrap();
        assert!(matches!(
            validate_training_set(&empty, &[]),
            Err(MlError::DegenerateTrainingSet(_))
        ));
    }

    #[test]
    fn validation_rejects_non_binary_targets() {
        let (d, mut t) = data();
        t[0] = 0.5;
        assert!(matches!(validate_training_set(&d, &t), Err(MlError::InvalidTargets(_))));
    }

    #[test]
    fn evaluate_produces_metrics() {
        let (d, t) = data();
        let mut s = Stub::default();
        s.fit(&d, &t).unwrap();
        let m = evaluate(&s, &d, &t).unwrap();
        // stub flags x > 0.5: rows 6,7,8,9 → tp {7,9}, fp {6,8}
        assert!((m.accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unfitted_model_errors() {
        let s = Stub::default();
        assert_eq!(s.predict_proba_row(&[0.1]).unwrap_err(), MlError::NotFitted);
    }

    #[test]
    fn latency_is_positive() {
        let (d, t) = data();
        let mut s = Stub::default();
        s.fit(&d, &t).unwrap();
        let lat = measure_latency_ms(&s, &d, 3).unwrap();
        assert!((0.0..10.0).contains(&lat));
    }
}
