//! Logistic regression with full-batch gradient descent.
//!
//! Besides serving as one of the five classical detectors, LR plays two
//! special roles in the paper: it is the *surrogate model* whose loss
//! gradient drives LowProFool perturbations, and the *imperceptibility
//! evaluator* that scores generated adversarial samples (Algorithm 1).
//! Both need access to the decision function and its input gradient,
//! which this implementation exposes.

use hmd_nn::sigmoid;
use hmd_tabular::Dataset;

use crate::model::{validate_training_set, Classifier};
use crate::MlError;

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LogisticRegressionConfig {
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        Self { learning_rate: 0.5, epochs: 300, l2: 1e-4 }
    }
}

/// L2-regularized logistic regression.
///
/// # Example
///
/// ```
/// use hmd_ml::{Classifier, LogisticRegression};
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), hmd_ml::MlError> {
/// let mut d = Dataset::new(vec!["x".into()])?;
/// for i in 0..20 {
///     let label = if i < 10 { Class::Benign } else { Class::Malware };
///     d.push(&[i as f64], label)?;
/// }
/// let targets = d.binary_targets(Class::is_attack);
/// let mut lr = LogisticRegression::new();
/// lr.fit(&d, &targets)?;
/// assert!(lr.predict_proba_row(&[19.0])? > 0.5);
/// assert!(lr.predict_proba_row(&[0.0])? < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    config: LogisticRegressionConfig,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl LogisticRegression {
    /// A model with default hyper-parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(LogisticRegressionConfig::default())
    }

    /// A model with explicit hyper-parameters.
    #[must_use]
    pub fn with_config(config: LogisticRegressionConfig) -> Self {
        Self { config, weights: Vec::new(), bias: 0.0, fitted: false }
    }

    /// The fitted weight vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before `fit`.
    pub fn weights(&self) -> Result<&[f64], MlError> {
        if self.fitted {
            Ok(&self.weights)
        } else {
            Err(MlError::NotFitted)
        }
    }

    /// The fitted intercept.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before `fit`.
    pub fn bias(&self) -> Result<f64, MlError> {
        if self.fitted {
            Ok(self.bias)
        } else {
            Err(MlError::NotFitted)
        }
    }

    /// The raw decision value `w·x + b` (positive ⇒ attack side).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] / [`MlError::DimensionMismatch`].
    pub fn decision_function(&self, row: &[f64]) -> Result<f64, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if row.len() != self.weights.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.weights.len(),
                actual: row.len(),
            });
        }
        Ok(self.weights.iter().zip(row).map(|(w, x)| w * x).sum::<f64>() + self.bias)
    }

    /// Gradient of the logistic loss `L(x, t)` with respect to the *input*
    /// `x` for a desired target `t` — the term LowProFool descends along
    /// (Eq. 1 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] / [`MlError::DimensionMismatch`].
    pub fn input_gradient(&self, row: &[f64], target: f64) -> Result<Vec<f64>, MlError> {
        let z = self.decision_function(row)?;
        let p = sigmoid(z);
        // dL/dx = (p - t) * w
        Ok(self.weights.iter().map(|w| (p - target) * w).collect())
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn fit(&mut self, data: &Dataset, targets: &[f64]) -> Result<(), MlError> {
        validate_training_set(data, targets)?;
        if self.config.learning_rate <= 0.0 || self.config.epochs == 0 {
            return Err(MlError::InvalidHyperparameter("learning rate/epochs must be positive"));
        }
        let n = data.len();
        let d = data.n_features();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut grad = vec![0.0; d];
        for _ in 0..self.config.epochs {
            grad.fill(0.0);
            let mut grad_b = 0.0;
            for (i, &target) in targets.iter().enumerate() {
                let row = data.row(i)?;
                let z = self.weights.iter().zip(row).map(|(w, x)| w * x).sum::<f64>()
                    + self.bias;
                let err = sigmoid(z) - target;
                for (g, &x) in grad.iter_mut().zip(row) {
                    *g += err * x;
                }
                grad_b += err;
            }
            let lr = self.config.learning_rate / n as f64;
            for (w, g) in self.weights.iter_mut().zip(&grad) {
                *w -= lr * (g + self.config.l2 * *w * n as f64);
            }
            self.bias -= lr * grad_b;
        }
        self.fitted = true;
        Ok(())
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<f64, MlError> {
        Ok(sigmoid(self.decision_function(row)?))
    }

    fn size_bytes(&self) -> usize {
        (self.weights.len() + 1) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_tabular::Class;
    use hmd_util::rng::prelude::*;

    fn separable(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for _ in 0..n {
            let benign = [rng.random_range(-1.0..0.3), rng.random_range(-1.0..0.3)];
            let attack = [rng.random_range(0.7..2.0), rng.random_range(0.7..2.0)];
            d.push(&benign, Class::Benign).unwrap();
            d.push(&attack, Class::Malware).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        (d, t)
    }

    #[test]
    fn learns_separable_data() {
        let (d, t) = separable(100, 1);
        let mut lr = LogisticRegression::new();
        lr.fit(&d, &t).unwrap();
        let m = crate::model::evaluate(&lr, &d, &t).unwrap();
        assert!(m.accuracy > 0.97, "accuracy {}", m.accuracy);
        assert!(m.auc > 0.99, "auc {}", m.auc);
    }

    #[test]
    fn decision_function_sign_matches_probability() {
        let (d, t) = separable(50, 2);
        let mut lr = LogisticRegression::new();
        lr.fit(&d, &t).unwrap();
        let z = lr.decision_function(&[1.5, 1.5]).unwrap();
        let p = lr.predict_proba_row(&[1.5, 1.5]).unwrap();
        assert!(z > 0.0 && p > 0.5);
        let z = lr.decision_function(&[-0.8, -0.8]).unwrap();
        let p = lr.predict_proba_row(&[-0.8, -0.8]).unwrap();
        assert!(z < 0.0 && p < 0.5);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let (d, t) = separable(50, 3);
        let mut lr = LogisticRegression::new();
        lr.fit(&d, &t).unwrap();
        let x = [0.4, 0.6];
        let target = 0.0;
        let grad = lr.input_gradient(&x, target).unwrap();
        let loss = |x: &[f64]| -> f64 {
            let p = lr.predict_proba_row(x).unwrap();
            // binary cross-entropy toward `target`
            -(target * p.max(1e-12).ln() + (1.0 - target) * (1.0 - p).max(1e-12).ln())
        };
        let eps = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - grad[i]).abs() < 1e-6 * (1.0 + num.abs()),
                "grad {i}: numeric {num} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn errors_before_fit_and_on_bad_width() {
        let lr = LogisticRegression::new();
        assert_eq!(lr.predict_proba_row(&[1.0]).unwrap_err(), MlError::NotFitted);
        assert!(lr.weights().is_err());
        let (d, t) = separable(20, 4);
        let mut lr = LogisticRegression::new();
        lr.fit(&d, &t).unwrap();
        assert!(matches!(
            lr.predict_proba_row(&[1.0]),
            Err(MlError::DimensionMismatch { expected: 2, actual: 1 })
        ));
    }

    #[test]
    fn l2_shrinks_weights() {
        let (d, t) = separable(100, 5);
        let mut weak = LogisticRegression::with_config(LogisticRegressionConfig {
            l2: 0.0,
            ..LogisticRegressionConfig::default()
        });
        let mut strong = LogisticRegression::with_config(LogisticRegressionConfig {
            l2: 0.5,
            ..LogisticRegressionConfig::default()
        });
        weak.fit(&d, &t).unwrap();
        strong.fit(&d, &t).unwrap();
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm(strong.weights().unwrap()) < norm(weak.weights().unwrap()));
    }

    #[test]
    fn size_counts_weights_and_bias() {
        let (d, t) = separable(20, 6);
        let mut lr = LogisticRegression::new();
        lr.fit(&d, &t).unwrap();
        assert_eq!(lr.size_bytes(), 3 * 8);
    }
}
