//! The MLP detector (on the `hmd-nn` substrate) — the paper's strongest
//! classical model.

use hmd_nn::{Dense, InferScratch, Loss, Optimizer, Relu, Sequential, Tensor};
use hmd_tabular::Dataset;
use hmd_util::rng::prelude::*;

use crate::model::{validate_training_set, Classifier, PredictScratch};
use crate::MlError;

/// Hyper-parameters for [`Mlp`].
#[derive(Clone, Debug, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Weight-initialization / shuffling seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self { hidden: vec![32, 16], learning_rate: 5e-3, epochs: 60, batch_size: 32, seed: 11 }
    }
}

/// A multi-layer perceptron with ReLU hidden layers and a logit output,
/// trained with Adam on binary cross-entropy.
///
/// # Example
///
/// ```
/// use hmd_ml::{Classifier, Mlp};
/// use hmd_tabular::{Class, Dataset};
///
/// # fn main() -> Result<(), hmd_ml::MlError> {
/// let mut d = Dataset::new(vec!["x".into()])?;
/// for i in 0..40 {
///     let label = if i < 20 { Class::Benign } else { Class::Malware };
///     d.push(&[i as f64 / 40.0], label)?;
/// }
/// let targets = d.binary_targets(Class::is_attack);
/// let mut mlp = Mlp::new();
/// mlp.fit(&d, &targets)?;
/// assert!(mlp.predict_proba_row(&[0.95])? > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Mlp {
    config: MlpConfig,
    net: Option<Sequential>,
    n_features: usize,
}

impl Default for Mlp {
    fn default() -> Self {
        Self::new()
    }
}

impl Mlp {
    /// An MLP with default hyper-parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(MlpConfig::default())
    }

    /// An MLP with explicit hyper-parameters.
    #[must_use]
    pub fn with_config(config: MlpConfig) -> Self {
        Self { config, net: None, n_features: 0 }
    }

    /// Flattened parameters of the fitted network (for integrity hashing).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotFitted`] before `fit`.
    pub fn params_bytes(&self) -> Result<Vec<u8>, MlError> {
        self.net.as_ref().map(Sequential::params_bytes).ok_or(MlError::NotFitted)
    }
}

impl Classifier for Mlp {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn fit(&mut self, data: &Dataset, targets: &[f64]) -> Result<(), MlError> {
        validate_training_set(data, targets)?;
        if self.config.hidden.is_empty() || self.config.epochs == 0 || self.config.batch_size == 0
        {
            return Err(MlError::InvalidHyperparameter(
                "hidden layers, epochs and batch size must be positive",
            ));
        }
        self.n_features = data.n_features();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut net = Sequential::new();
        let mut width = self.n_features;
        for &h in &self.config.hidden {
            net.push(Box::new(Dense::he(width, h, &mut rng)));
            net.push(Box::new(Relu::new()));
            width = h;
        }
        net.push(Box::new(Dense::xavier(width, 1, &mut rng)));

        let x = Tensor::from_fn(data.len(), self.n_features, |r, c| {
            data.row(r).expect("in range")[c]
        });
        let y = Tensor::from_fn(data.len(), 1, |r, _| targets[r]);
        let mut opt = Optimizer::adam(self.config.learning_rate);
        for _ in 0..self.config.epochs {
            net.train_epoch(
                &x,
                &y,
                Loss::BinaryCrossEntropy,
                &mut opt,
                self.config.batch_size,
                &mut rng,
            );
        }
        self.net = Some(net);
        Ok(())
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<f64, MlError> {
        let net = self.net.as_ref().ok_or(MlError::NotFitted)?;
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: row.len(),
            });
        }
        let logits = net.infer(&Tensor::row_vector(row));
        Ok(hmd_nn::sigmoid(logits.get(0, 0)))
    }

    fn predict_proba_batch(&self, rows: &[f64], width: usize) -> Result<Vec<f64>, MlError> {
        crate::model::validate_batch_shape(rows, width)?;
        let net = self.net.as_ref().ok_or(MlError::NotFitted)?;
        if width != self.n_features {
            return Err(MlError::DimensionMismatch { expected: self.n_features, actual: width });
        }
        // One forward pass for the whole batch: every Dense layer is a
        // single blocked matmul. Per-element accumulation order in the
        // blocked kernel is row-count-invariant, so each row's logit is
        // bit-identical to the row-vector path above.
        let x = Tensor::from_vec(rows.len() / width, width, rows.to_vec());
        let logits = net.infer(&x);
        Ok((0..logits.rows()).map(|r| hmd_nn::sigmoid(logits.get(r, 0))).collect())
    }

    fn make_scratch(&self, max_rows: usize) -> PredictScratch {
        let nn = self.net.as_ref().map_or_else(InferScratch::default, |net| {
            InferScratch::for_net(net, self.n_features, max_rows.max(1))
        });
        PredictScratch { nn, ..PredictScratch::default() }
    }

    fn predict_proba_row_with(
        &self,
        row: &[f64],
        scratch: &mut PredictScratch,
    ) -> Result<f64, MlError> {
        let net = self.net.as_ref().ok_or(MlError::NotFitted)?;
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                actual: row.len(),
            });
        }
        let logits = net.infer_into(row, 1, self.n_features, &mut scratch.nn);
        Ok(hmd_nn::sigmoid(logits[0]))
    }

    fn predict_proba_into(
        &self,
        rows: &[f64],
        width: usize,
        scratch: &mut PredictScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), MlError> {
        crate::model::validate_batch_shape(rows, width)?;
        let net = self.net.as_ref().ok_or(MlError::NotFitted)?;
        if width != self.n_features {
            return Err(MlError::DimensionMismatch { expected: self.n_features, actual: width });
        }
        let logits = net.infer_into(rows, rows.len() / width, width, &mut scratch.nn);
        out.clear();
        out.extend(logits.iter().map(|&l| hmd_nn::sigmoid(l)));
        Ok(())
    }

    fn size_bytes(&self) -> usize {
        self.net.as_ref().map_or(0, Sequential::size_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evaluate;
    use hmd_tabular::Class;

    fn moons(n: usize, seed: u64) -> (Dataset, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for _ in 0..n {
            let t = rng.random::<f64>() * std::f64::consts::PI;
            let benign = [t.cos() + rng.random_range(-0.15..0.15),
                t.sin() + rng.random_range(-0.15..0.15)];
            let t2 = rng.random::<f64>() * std::f64::consts::PI;
            let attack = [1.0 - t2.cos() + rng.random_range(-0.15..0.15),
                0.5 - t2.sin() + rng.random_range(-0.15..0.15)];
            d.push(&benign, Class::Benign).unwrap();
            d.push(&attack, Class::Malware).unwrap();
        }
        let t = d.binary_targets(Class::is_attack);
        (d, t)
    }

    #[test]
    fn learns_nonlinear_moons() {
        let (d, t) = moons(200, 1);
        let mut mlp = Mlp::new();
        mlp.fit(&d, &t).unwrap();
        let m = evaluate(&mlp, &d, &t).unwrap();
        assert!(m.accuracy > 0.93, "accuracy {}", m.accuracy);
    }

    #[test]
    fn prediction_is_deterministic_and_immutable() {
        let (d, t) = moons(80, 2);
        let mut mlp = Mlp::new();
        mlp.fit(&d, &t).unwrap();
        let p1 = mlp.predict_proba_row(&[0.5, 0.5]).unwrap();
        let p2 = mlp.predict_proba_row(&[0.5, 0.5]).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn same_seed_reproduces_model() {
        let (d, t) = moons(60, 3);
        let fit = |seed| {
            let mut m = Mlp::with_config(MlpConfig { seed, epochs: 10, ..MlpConfig::default() });
            m.fit(&d, &t).unwrap();
            m.predict_proba(&d).unwrap()
        };
        assert_eq!(fit(5), fit(5));
        assert_ne!(fit(5), fit(6));
    }

    #[test]
    fn errors_on_misuse() {
        let mlp = Mlp::new();
        assert_eq!(mlp.predict_proba_row(&[0.0, 0.0]).unwrap_err(), MlError::NotFitted);
        let (d, t) = moons(40, 4);
        let mut mlp = Mlp::new();
        mlp.fit(&d, &t).unwrap();
        assert!(matches!(
            mlp.predict_proba_row(&[1.0]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn scratch_paths_match_allocating_paths_bitwise() {
        let (d, t) = moons(80, 6);
        let mut mlp = Mlp::with_config(MlpConfig { epochs: 5, ..MlpConfig::default() });
        mlp.fit(&d, &t).unwrap();
        let mut scratch = mlp.make_scratch(d.len());
        let flat: Vec<f64> = (0..d.len()).flat_map(|i| d.row(i).unwrap().to_vec()).collect();
        let mut got = Vec::with_capacity(d.len());
        mlp.predict_proba_into(&flat, 2, &mut scratch, &mut got).unwrap();
        let want = mlp.predict_proba_batch(&flat, 2).unwrap();
        assert_eq!(got, want);
        for (i, row) in flat.chunks(2).enumerate() {
            let p = mlp.predict_proba_row_with(row, &mut scratch).unwrap();
            assert_eq!(p, mlp.predict_proba_row(row).unwrap(), "row {i}");
        }
    }

    #[test]
    fn size_reflects_architecture() {
        let (d, t) = moons(40, 5);
        let mut mlp = Mlp::with_config(MlpConfig {
            hidden: vec![8],
            epochs: 2,
            ..MlpConfig::default()
        });
        mlp.fit(&d, &t).unwrap();
        // (2*8 + 8) + (8*1 + 1) = 33 params
        assert_eq!(mlp.size_bytes(), 33 * 8);
    }
}
