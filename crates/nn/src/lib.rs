//! Minimal neural-network substrate for the HMD reproduction.
//!
//! The Rust deep-learning ecosystem is immature, so this crate implements
//! — from scratch — exactly what the paper's models need:
//!
//! * [`Tensor`] — a dense row-major 2-D matrix;
//! * [`Dense`], [`Conv1d`], [`Relu`], [`Tanh`], [`Sigmoid`], [`Softmax`] —
//!   layers with hand-derived, finite-difference-verified backprop;
//! * [`Loss`] — MSE, fused softmax cross-entropy, fused binary
//!   cross-entropy;
//! * [`Optimizer`] — SGD (+momentum) and Adam;
//! * [`Sequential`] — a feed-forward container with a mini-batch training
//!   loop, parameter flattening and byte serialization (for SHA-256
//!   integrity hashing).
//!
//! It powers the paper's MLP detector, the 2-conv + 3-FC neural network,
//! and both networks of the A2C adversarial predictor.
//!
//! # Example
//!
//! ```
//! use hmd_nn::{Dense, Loss, Optimizer, Relu, Sequential, Tensor};
//! use hmd_util::rng::prelude::*;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Sequential::new()
//!     .with(Dense::he(4, 16, &mut rng))
//!     .with(Relu::new())
//!     .with(Dense::xavier(16, 1, &mut rng));
//! let x = Tensor::zeros(2, 4);
//! let logits = net.forward(&x);
//! assert_eq!(logits.shape(), (2, 1));
//! ```

pub mod init;
pub mod layer;
pub mod loss;
pub mod optimizer;
pub mod regularize;
pub mod scratch;
pub mod sequential;
pub mod tensor;

mod error;

pub use error::NnError;
pub use layer::{
    sigmoid, softmax_rows, Conv1d, Dense, Layer, ParamBlock, Relu, Sigmoid, Softmax, Tanh,
};
pub use loss::Loss;
pub use optimizer::Optimizer;
pub use regularize::{clip_grad_norm, Dropout};
pub use scratch::InferScratch;
pub use sequential::Sequential;
pub use tensor::{matmul_slices, Tensor};
