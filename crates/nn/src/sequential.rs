//! A feed-forward stack of layers with a mini-batch training loop.

use hmd_util::rng::prelude::*;

use crate::layer::Layer;
use crate::loss::Loss;
use crate::optimizer::Optimizer;
use crate::{NnError, Tensor};

/// A feed-forward network: layers applied in sequence.
///
/// # Example — learning XOR
///
/// ```
/// use hmd_nn::{Dense, Loss, Optimizer, Sequential, Tanh, Tensor};
/// use hmd_util::rng::prelude::*;
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let mut net = Sequential::new()
///     .with(Dense::xavier(2, 8, &mut rng))
///     .with(Tanh::new())
///     .with(Dense::xavier(8, 1, &mut rng));
/// let x = Tensor::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
/// let y = Tensor::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
/// let mut opt = Optimizer::adam(0.05);
/// for _ in 0..400 {
///     net.train_batch(&x, &y, Loss::BinaryCrossEntropy, &mut opt);
/// }
/// let probs = net.forward(&x).map(hmd_nn::sigmoid);
/// assert!(probs.get(0, 0) < 0.5 && probs.get(1, 0) > 0.5);
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty network.
    #[must_use]
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn with<L: Layer + 'static>(mut self, layer: L) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// The layer chain, in application order.
    #[must_use]
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Whether the network has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the full forward pass (caching per-layer state for a
    /// subsequent [`Self::backward`]).
    ///
    /// # Panics
    ///
    /// Panics on inter-layer shape mismatches.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Runs the forward pass without caching backward state — the
    /// inference path, usable through `&self`.
    ///
    /// # Panics
    ///
    /// Panics on inter-layer shape mismatches.
    #[must_use]
    pub fn infer(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Back-propagates `grad_output` through every layer, accumulating
    /// parameter gradients, and returns the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::forward`].
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// One optimizer update: forward, loss, backward, step. Returns the
    /// batch loss.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches between output and `targets`.
    pub fn train_batch(
        &mut self,
        inputs: &Tensor,
        targets: &Tensor,
        loss: Loss,
        optimizer: &mut Optimizer,
    ) -> f64 {
        let out = self.forward(inputs);
        let (l, grad) = loss.compute(&out, targets);
        self.backward(&grad);
        let mut blocks: Vec<_> =
            self.layers.iter_mut().flat_map(|l| l.param_blocks_mut()).collect();
        optimizer.step(&mut blocks);
        l
    }

    /// One epoch of shuffled mini-batch training; returns the mean batch
    /// loss.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `inputs`/`targets` row counts differ.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        inputs: &Tensor,
        targets: &Tensor,
        loss: Loss,
        optimizer: &mut Optimizer,
        batch_size: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(batch_size > 0, "batch size must be positive");
        assert_eq!(inputs.rows(), targets.rows(), "input/target row mismatch");
        let n = inputs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch_size) {
            let bx = Tensor::from_fn(chunk.len(), inputs.cols(), |r, c| {
                inputs.get(chunk[r], c)
            });
            let by = Tensor::from_fn(chunk.len(), targets.cols(), |r, c| {
                targets.get(chunk[r], c)
            });
            total += self.train_batch(&bx, &by, loss, optimizer);
            batches += 1;
        }
        total / batches as f64
    }

    /// Total scalar parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Estimated model size in bytes (8 bytes per `f64` parameter).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f64>()
    }

    /// All parameters flattened, layer by layer, block by block.
    #[must_use]
    pub fn params_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            for block in layer.param_blocks() {
                out.extend_from_slice(block.values.as_slice());
            }
        }
        out
    }

    /// Loads parameters previously produced by [`Self::params_flat`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] unless `params` has exactly
    /// `param_count()` values.
    pub fn load_params_flat(&mut self, params: &[f64]) -> Result<(), NnError> {
        let expected = self.param_count();
        if params.len() != expected {
            return Err(NnError::ParamLengthMismatch { expected, actual: params.len() });
        }
        let mut offset = 0;
        for layer in &mut self.layers {
            for block in layer.param_blocks_mut() {
                let n = block.len();
                block.values.as_mut_slice().copy_from_slice(&params[offset..offset + n]);
                offset += n;
            }
        }
        Ok(())
    }

    /// Parameters serialized as little-endian bytes, e.g. for SHA-256
    /// integrity hashing.
    #[must_use]
    pub fn params_bytes(&self) -> Vec<u8> {
        let params = self.params_flat();
        let mut out = Vec::with_capacity(params.len() * 8);
        for p in params {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    /// Mutable access to every trainable parameter block, in layer
    /// order — for callers implementing custom update rules (e.g. policy
    /// gradients) on top of [`Self::backward`].
    pub fn param_blocks_mut(&mut self) -> Vec<&mut crate::ParamBlock> {
        self.layers.iter_mut().flat_map(|l| l.param_blocks_mut()).collect()
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            for block in layer.param_blocks_mut() {
                block.zero_grad();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu, Tanh};

    fn xor_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        Sequential::new()
            .with(Dense::xavier(2, 8, &mut rng))
            .with(Tanh::new())
            .with(Dense::xavier(8, 1, &mut rng))
    }

    fn xor_data() -> (Tensor, Tensor) {
        (
            Tensor::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]),
            Tensor::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]),
        )
    }

    #[test]
    fn learns_xor_with_bce() {
        let mut net = xor_net(42);
        let (x, y) = xor_data();
        let mut opt = Optimizer::adam(0.05);
        let mut last = f64::INFINITY;
        for _ in 0..500 {
            last = net.train_batch(&x, &y, Loss::BinaryCrossEntropy, &mut opt);
        }
        assert!(last < 0.1, "final loss {last}");
        let probs = net.forward(&x).map(crate::sigmoid);
        assert!(probs.get(0, 0) < 0.5);
        assert!(probs.get(1, 0) > 0.5);
        assert!(probs.get(2, 0) > 0.5);
        assert!(probs.get(3, 0) < 0.5);
    }

    #[test]
    fn train_epoch_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Sequential::new()
            .with(Dense::he(3, 16, &mut rng))
            .with(Relu::new())
            .with(Dense::xavier(16, 1, &mut rng));
        // y = x0 + 2 x1 - x2
        let x = Tensor::from_fn(64, 3, |_, _| rng.random_range(-1.0..1.0));
        let y = Tensor::from_fn(64, 1, |r, _| {
            x.get(r, 0) + 2.0 * x.get(r, 1) - x.get(r, 2)
        });
        let mut opt = Optimizer::adam(0.01);
        let first = net.train_epoch(&x, &y, Loss::Mse, &mut opt, 16, &mut rng);
        let mut last = first;
        for _ in 0..60 {
            last = net.train_epoch(&x, &y, Loss::Mse, &mut opt, 16, &mut rng);
        }
        assert!(last < first * 0.2, "first {first}, last {last}");
    }

    #[test]
    fn params_roundtrip() {
        let net = xor_net(3);
        let params = net.params_flat();
        assert_eq!(params.len(), net.param_count());
        let mut other = xor_net(4);
        assert_ne!(other.params_flat(), params);
        other.load_params_flat(&params).unwrap();
        assert_eq!(other.params_flat(), params);
    }

    #[test]
    fn load_params_validates_length() {
        let mut net = xor_net(5);
        let err = net.load_params_flat(&[1.0, 2.0]).unwrap_err();
        assert_eq!(err, NnError::ParamLengthMismatch { expected: net.param_count(), actual: 2 });
    }

    #[test]
    fn params_bytes_length() {
        let net = xor_net(6);
        assert_eq!(net.params_bytes().len(), net.param_count() * 8);
        assert_eq!(net.size_bytes(), net.param_count() * 8);
    }

    #[test]
    fn identical_seeds_identical_nets() {
        let a = xor_net(11);
        let b = xor_net(11);
        assert_eq!(a.params_flat(), b.params_flat());
    }

    #[test]
    fn infer_matches_forward() {
        let mut net = xor_net(12);
        let (x, _) = xor_data();
        let by_infer = net.infer(&x);
        let by_forward = net.forward(&x);
        assert_eq!(by_infer, by_forward);
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut net = xor_net(8);
        let (x, y) = xor_data();
        let out = net.forward(&x);
        let (_, grad) = Loss::Mse.compute(&out, &y);
        net.backward(&grad);
        net.zero_grads();
        for layer in &net.layers {
            for block in layer.param_blocks() {
                assert!(block.grads.as_slice().iter().all(|g| *g == 0.0));
            }
        }
    }
}
