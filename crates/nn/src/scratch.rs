//! Preallocated activation scratch for allocation-free inference.
//!
//! [`InferScratch`] owns two ping-pong activation buffers sized once —
//! at warmup — from a network's layer chain ([`crate::Layer::out_cols`]) and a
//! maximum batch size. [`Sequential::infer_into`] then runs every
//! forward pass inside those buffers: after construction the inference
//! hot path performs zero heap allocations, while producing output
//! bit-identical to [`Sequential::infer`].

use crate::Sequential;

/// Reusable activation buffers for one network (or any network whose
/// widest activation and batch size fit).
///
/// # Example
///
/// ```
/// use hmd_nn::{Dense, InferScratch, Relu, Sequential, Tensor};
/// use hmd_util::rng::prelude::*;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let net = Sequential::new()
///     .with(Dense::he(4, 16, &mut rng))
///     .with(Relu::new())
///     .with(Dense::xavier(16, 1, &mut rng));
/// let mut scratch = InferScratch::for_net(&net, 4, 8);
/// let x = Tensor::from_fn(8, 4, |r, c| (r * 4 + c) as f64 / 10.0);
/// let out = net.infer_into(x.as_slice(), 8, 4, &mut scratch).to_vec();
/// assert_eq!(out, net.infer(&x).as_slice());
/// ```
#[derive(Clone, Debug, Default)]
pub struct InferScratch {
    a: Vec<f64>,
    b: Vec<f64>,
    max_rows: usize,
    max_cols: usize,
}

impl InferScratch {
    /// Scratch for up to `max_rows`-row batches whose activations never
    /// exceed `max_cols` columns.
    #[must_use]
    pub fn with_capacity(max_rows: usize, max_cols: usize) -> Self {
        let len = max_rows * max_cols;
        Self { a: vec![0.0; len], b: vec![0.0; len], max_rows, max_cols }
    }

    /// Scratch sized for `net` fed `in_cols`-wide rows in batches of up
    /// to `max_rows`: walks the layer chain through
    /// [`crate::Layer::out_cols`] and takes the widest activation.
    ///
    /// # Panics
    ///
    /// Panics if a layer rejects its input width (wiring mismatch).
    #[must_use]
    pub fn for_net(net: &Sequential, in_cols: usize, max_rows: usize) -> Self {
        Self::with_capacity(max_rows, net.max_activation_cols(in_cols))
    }

    /// Whether a `rows × cols` activation fits these buffers.
    #[must_use]
    pub fn fits(&self, rows: usize, cols: usize) -> bool {
        rows <= self.max_rows && cols <= self.max_cols
    }

    /// The configured maximum batch size.
    #[must_use]
    pub fn max_rows(&self) -> usize {
        self.max_rows
    }

    /// Grows the buffers so a `rows × cols` activation fits; a no-op
    /// when it already does. Warmup-time only — calling this on the hot
    /// path defeats the purpose.
    pub fn ensure(&mut self, rows: usize, cols: usize) {
        if !self.fits(rows, cols) {
            *self = Self::with_capacity(rows.max(self.max_rows), cols.max(self.max_cols));
        }
    }
}

impl Sequential {
    /// Output row width after the whole layer chain, for `in_cols`-wide
    /// input rows.
    ///
    /// # Panics
    ///
    /// Panics if a layer rejects its input width (wiring mismatch).
    #[must_use]
    pub fn out_cols(&self, in_cols: usize) -> usize {
        self.layers().iter().fold(in_cols, |cols, layer| layer.out_cols(cols))
    }

    /// The widest activation (input included) the chain produces for
    /// `in_cols`-wide rows — what [`InferScratch::for_net`] sizes by.
    ///
    /// # Panics
    ///
    /// Panics if a layer rejects its input width (wiring mismatch).
    #[must_use]
    pub fn max_activation_cols(&self, in_cols: usize) -> usize {
        let mut cols = in_cols;
        let mut max = cols;
        for layer in self.layers() {
            cols = layer.out_cols(cols);
            max = max.max(cols);
        }
        max
    }

    /// Allocation-free forward pass: runs `rows` row-major samples of
    /// width `cols` through the chain inside `scratch`'s ping-pong
    /// buffers and returns the output slice (`rows × out_cols(cols)`),
    /// bit-identical to [`Sequential::infer`] on the same data — both
    /// paths share each layer's kernel and the blocked matmul dispatch.
    ///
    /// # Panics
    ///
    /// Panics when `input` disagrees with `rows × cols`, an activation
    /// does not fit `scratch`, or on inter-layer shape mismatches.
    #[must_use]
    pub fn infer_into<'s>(
        &self,
        input: &[f64],
        rows: usize,
        cols: usize,
        scratch: &'s mut InferScratch,
    ) -> &'s [f64] {
        assert_eq!(input.len(), rows * cols, "input length must equal rows*cols");
        assert!(scratch.fits(rows, cols), "scratch too small for input batch");
        let layers = self.layers();
        let (mut src, mut dst) = (&mut scratch.a, &mut scratch.b);
        if layers.is_empty() {
            src[..input.len()].copy_from_slice(input);
            return &src[..input.len()];
        }
        let mut width = layers[0].out_cols(cols);
        assert!(rows * width <= src.len(), "scratch too small for activation");
        layers[0].infer_into(input, rows, cols, &mut src[..rows * width]);
        for layer in &layers[1..] {
            let next = layer.out_cols(width);
            assert!(rows * next <= dst.len(), "scratch too small for activation");
            layer.infer_into(&src[..rows * width], rows, width, &mut dst[..rows * next]);
            std::mem::swap(&mut src, &mut dst);
            width = next;
        }
        &src[..rows * width]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv1d, Dense, Relu, Sigmoid, Softmax, Tanh, Tensor};
    use hmd_util::rng::prelude::*;

    fn random_batch(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(rows, cols, |_, _| rng.random_range(-1.5..1.5))
    }

    #[test]
    fn infer_into_matches_infer_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Sequential::new()
            .with(Dense::he(6, 32, &mut rng))
            .with(Relu::new())
            .with(Dense::he(32, 24, &mut rng))
            .with(Tanh::new())
            .with(Dense::xavier(24, 3, &mut rng))
            .with(Softmax::new());
        let mut scratch = InferScratch::for_net(&net, 6, 64);
        for rows in [1usize, 5, 64] {
            let x = random_batch(rows, 6, rows as u64);
            let got = net.infer_into(x.as_slice(), rows, 6, &mut scratch);
            assert_eq!(got, net.infer(&x).as_slice(), "rows = {rows}");
        }
    }

    #[test]
    fn infer_into_matches_infer_with_conv_and_sigmoid() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Sequential::new()
            .with(Conv1d::new(1, 4, 2, &mut rng))
            .with(Relu::new())
            .with(Dense::he(4 * 7, 8, &mut rng))
            .with(Sigmoid::new());
        // conv widens 8 → 4*7 = 28: the scratch must size by the widest
        // activation, not the input or output width
        assert_eq!(net.max_activation_cols(8), 28);
        let mut scratch = InferScratch::for_net(&net, 8, 9);
        let x = random_batch(9, 8, 17);
        let got = net.infer_into(x.as_slice(), 9, 8, &mut scratch);
        assert_eq!(got, net.infer(&x).as_slice());
    }

    #[test]
    fn infer_into_is_reusable_across_batch_sizes() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Sequential::new()
            .with(Dense::he(4, 16, &mut rng))
            .with(Relu::new())
            .with(Dense::xavier(16, 1, &mut rng));
        let mut scratch = InferScratch::for_net(&net, 4, 16);
        // smaller batches reuse the same buffers; stale tail contents
        // from the larger run must not leak into results
        let big = random_batch(16, 4, 30);
        let _ = net.infer_into(big.as_slice(), 16, 4, &mut scratch);
        let small = random_batch(2, 4, 31);
        let got = net.infer_into(small.as_slice(), 2, 4, &mut scratch).to_vec();
        assert_eq!(got, net.infer(&small).as_slice());
    }

    #[test]
    fn empty_net_copies_input_through() {
        let net = Sequential::new();
        let mut scratch = InferScratch::with_capacity(2, 3);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(net.infer_into(&x, 2, 3, &mut scratch), &x);
    }

    #[test]
    #[should_panic(expected = "scratch too small")]
    fn oversized_batch_is_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = Sequential::new().with(Dense::he(4, 4, &mut rng));
        let mut scratch = InferScratch::for_net(&net, 4, 2);
        let x = random_batch(3, 4, 1);
        let _ = net.infer_into(x.as_slice(), 3, 4, &mut scratch);
    }

    #[test]
    fn ensure_grows_and_is_idempotent() {
        let mut s = InferScratch::with_capacity(2, 4);
        assert!(s.fits(2, 4) && !s.fits(3, 4));
        s.ensure(8, 4);
        assert!(s.fits(8, 4));
        assert_eq!(s.max_rows(), 8);
        let before = s.a.len();
        s.ensure(2, 2);
        assert_eq!(s.a.len(), before);
    }
}
