//! Regularization utilities: inverted dropout and gradient clipping.

use hmd_util::rng::prelude::*;

use crate::layer::{Layer, ParamBlock};
use crate::Tensor;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so inference
/// (which applies no mask) needs no rescaling.
///
/// # Example
///
/// ```
/// use hmd_nn::{Dropout, Layer, Tensor};
///
/// let mut drop = Dropout::new(0.5, 7);
/// let x = Tensor::full(4, 8, 1.0);
/// let y = drop.forward(&x);           // some activations zeroed
/// assert!(y.as_slice().iter().any(|&v| v == 0.0));
/// let z = drop.infer(&x);             // inference is the identity
/// assert_eq!(z, x);
/// ```
#[derive(Debug)]
pub struct Dropout {
    p: f64,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// A dropout layer zeroing activations with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    #[must_use]
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Self { p, rng: StdRng::seed_from_u64(seed), mask: None }
    }

    /// The drop probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        if self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let mask = Tensor::from_fn(input.rows(), input.cols(), |_, _| {
            if self.rng.random_bool(keep) {
                1.0 / keep
            } else {
                0.0
            }
        });
        let out = input.hadamard(&mask);
        self.mask = Some(mask);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.clone()
    }

    fn infer_into(&self, input: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
        assert_eq!(input.len(), rows * cols, "input length must equal rows*cols");
        out.copy_from_slice(input);
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => grad_output.hadamard(mask),
            None => grad_output.clone(),
        }
    }
}

/// Scales all accumulated gradients so their global L2 norm does not
/// exceed `max_norm`; returns the pre-clip norm.
///
/// # Panics
///
/// Panics for a non-positive `max_norm`.
pub fn clip_grad_norm(blocks: &mut [&mut ParamBlock], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "max norm must be positive");
    let total: f64 = blocks
        .iter()
        .map(|b| b.grads.as_slice().iter().map(|g| g * g).sum::<f64>())
        .sum();
    let norm = total.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for block in blocks.iter_mut() {
            for g in block.grads.as_mut_slice() {
                *g *= scale;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_zeroes_about_p_fraction() {
        let mut drop = Dropout::new(0.3, 1);
        let x = Tensor::full(100, 100, 1.0);
        let y = drop.forward(&x);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / y.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "zero fraction {frac}");
        // survivors are scaled to preserve expectation
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut drop = Dropout::new(0.5, 2);
        let x = Tensor::full(4, 4, 1.0);
        let y = drop.forward(&x);
        let g = drop.backward(&Tensor::full(4, 4, 1.0));
        // gradient flows exactly where activations survived
        for (yo, go) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yo == 0.0, *go == 0.0);
        }
    }

    #[test]
    fn dropout_infer_is_identity() {
        let drop = Dropout::new(0.9, 3);
        let x = Tensor::from_rows(&[&[1.0, -2.0, 3.0]]);
        assert_eq!(drop.infer(&x), x);
    }

    #[test]
    fn zero_probability_is_passthrough() {
        let mut drop = Dropout::new(0.0, 4);
        let x = Tensor::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(drop.forward(&x), x);
        assert_eq!(drop.backward(&x), x);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_p_of_one() {
        let _ = Dropout::new(1.0, 5);
    }

    #[test]
    fn clipping_bounds_global_norm() {
        let mut a = ParamBlock::new(Tensor::full(1, 2, 0.0));
        a.grads = Tensor::from_rows(&[&[3.0, 4.0]]); // norm 5
        let pre = clip_grad_norm(&mut [&mut a], 1.0);
        assert!((pre - 5.0).abs() < 1e-12);
        let post: f64 = a.grads.as_slice().iter().map(|g| g * g).sum::<f64>().sqrt();
        assert!((post - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clipping_leaves_small_gradients_alone() {
        let mut a = ParamBlock::new(Tensor::full(1, 2, 0.0));
        a.grads = Tensor::from_rows(&[&[0.3, 0.4]]); // norm 0.5
        let before = a.grads.clone();
        clip_grad_norm(&mut [&mut a], 1.0);
        assert_eq!(a.grads, before);
    }
}
