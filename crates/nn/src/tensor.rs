//! A minimal dense 2-D tensor (matrix) with the operations backprop needs.

use hmd_util::impl_json;


/// A dense, row-major 2-D tensor of `f64`.
///
/// Rows conventionally index batch samples and columns index features /
/// units. All binary operations panic on shape mismatch — shape errors are
/// programming errors in network wiring, not runtime conditions.
///
/// # Example
///
/// ```
/// use hmd_nn::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl_json!(struct Tensor { rows, cols, data });

impl Tensor {
    /// An all-zeros tensor.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tensor dimensions must be positive");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        assert!(rows > 0 && cols > 0, "tensor dimensions must be positive");
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// The identity matrix of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "tensor dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Builds a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// A 1×n tensor viewing one sample.
    ///
    /// # Panics
    ///
    /// Panics if `row` is empty.
    #[must_use]
    pub fn row_vector(row: &[f64]) -> Self {
        Self::from_rows(&[row])
    }

    /// Builds a tensor by calling `f(row, col)` for every element.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut t = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                t.data[r * cols + c] = f(r, c);
            }
        }
        t
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false — tensors have positive dimensions by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row out of range");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrow one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row out of range");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols() == rhs.rows()`.
    #[must_use]
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: ({}x{}) · ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(lhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    #[must_use]
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Adds a 1×cols row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics unless `bias` is 1×cols.
    #[must_use]
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sums over rows, producing a 1×cols tensor (bias gradient).
    #[must_use]
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Scaled copy.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Tensor {
        let data = self.data.iter().map(|v| v * factor).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise map.
    #[must_use]
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Tensor {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Mean over every element.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_validates_widths() {
        let _ = Tensor::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).row(0), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).row(0), &[2.0, 2.0]);
        assert_eq!(a.hadamard(&b).row(0), &[3.0, 8.0]);
        assert_eq!(a.scaled(2.0).row(0), &[2.0, 4.0]);
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        let x = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let b = Tensor::from_rows(&[&[10.0, 20.0]]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.row(1), &[12.0, 22.0]);
        assert_eq!(y.sum_rows().row(0), &[23.0, 43.0]);
    }

    #[test]
    fn map_and_norm() {
        let t = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(t.frobenius_norm(), 5.0);
        assert_eq!(t.map(|v| v * v).row(0), &[9.0, 16.0]);
        assert_eq!(t.mean(), 3.5);
    }

    #[test]
    fn eye_is_identity_for_matmul() {
        let a = Tensor::from_rows(&[&[2.0, -1.0], &[0.5, 3.0]]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }
}
