//! A minimal dense 2-D tensor (matrix) with the operations backprop needs.

use hmd_util::{impl_json, par};

/// Shared-dimension tile size for the blocked matmul: keeps the active
/// RHS rows and output rows resident in cache across the micro-kernel.
const BLOCK_K: usize = 128;

/// LHS rows processed together by the micro-kernel; each streamed RHS
/// row is reused this many times from registers.
const MICRO_ROWS: usize = 4;

/// Multiply-accumulate count above which matmul outer loops run on the
/// parallel substrate; below it, thread launch costs more than the work.
const PAR_MIN_MACS: usize = 1 << 16;

/// A dense, row-major 2-D tensor of `f64`.
///
/// Rows conventionally index batch samples and columns index features /
/// units. All binary operations panic on shape mismatch — shape errors are
/// programming errors in network wiring, not runtime conditions.
///
/// # Example
///
/// ```
/// use hmd_nn::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl_json!(struct Tensor { rows, cols, data });

impl Tensor {
    /// An all-zeros tensor.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tensor dimensions must be positive");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        assert!(rows > 0 && cols > 0, "tensor dimensions must be positive");
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// The identity matrix of size `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "tensor dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Builds a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// A 1×n tensor viewing one sample.
    ///
    /// # Panics
    ///
    /// Panics if `row` is empty.
    #[must_use]
    pub fn row_vector(row: &[f64]) -> Self {
        Self::from_rows(&[row])
    }

    /// Builds a tensor by calling `f(row, col)` for every element.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut t = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                t.data[r * cols + c] = f(r, c);
            }
        }
        t
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false — tensors have positive dimensions by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row out of range");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrow one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row out of range");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The flat row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self · rhs`, via a cache-blocked kernel: the
    /// shared dimension is tiled ([`BLOCK_K`]) and a [`MICRO_ROWS`]-row
    /// micro-kernel reuses each streamed RHS row across several output
    /// rows. Large products parallelize the outer row loop on
    /// [`hmd_util::par`]; every output element accumulates in the same
    /// order at any thread count, so results are byte-identical across
    /// `HMD_THREADS` settings.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols() == rhs.rows()`.
    #[must_use]
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: ({}x{}) · ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        matmul_slices(&self.data, self.rows, self.cols, &rhs.data, rhs.cols, &mut out.data);
        out
    }

    /// Reference textbook triple loop (row·column dot products). Kept
    /// for the property suite and the `matmul` benches; use
    /// [`Tensor::matmul`] everywhere else.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols() == rhs.rows()`.
    #[must_use]
    pub fn matmul_naive(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: ({}x{}) · ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * rhs.data[k * rhs.cols + j];
                }
                out.data[i * rhs.cols + j] = acc;
            }
        }
        out
    }

    /// Fused product with a transposed right-hand side: `self · rhsᵀ`,
    /// where `rhs` is passed in its natural (untransposed) layout. Both
    /// operands are walked along contiguous rows, so this replaces the
    /// `a.matmul(&b.transposed())` pattern in backprop without
    /// materializing the transposed copy.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols() == rhs.cols()`.
    #[must_use]
    pub fn matmul_transposed(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transposed shape mismatch: ({}x{}) · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.rows, rhs.rows);
        let (inner, cols) = (self.cols, rhs.rows);
        let body = |row0: usize, chunk: &mut [f64]| {
            for (r, out_row) in chunk.chunks_mut(cols).enumerate() {
                let a_row = &self.data[(row0 + r) * inner..(row0 + r + 1) * inner];
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o = dot(a_row, &rhs.data[j * inner..(j + 1) * inner]);
                }
            }
        };
        if self.rows * inner * cols >= PAR_MIN_MACS {
            par::par_for_chunks(&mut out.data, cols, |offset, chunk| body(offset / cols, chunk));
        } else {
            body(0, &mut out.data);
        }
        out
    }

    /// Fused product with a transposed left-hand side: `selfᵀ · rhs`,
    /// with `self` passed in its natural layout. This replaces the
    /// `a.transposed().matmul(&b)` pattern in backprop (weight
    /// gradients) without materializing the transposed copy; the shared
    /// dimension is the row count of both operands.
    ///
    /// # Panics
    ///
    /// Panics unless `self.rows() == rhs.rows()`.
    #[must_use]
    pub fn tr_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, rhs.rows,
            "tr_matmul shape mismatch: ({}x{})ᵀ · ({}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Tensor::zeros(self.cols, rhs.cols);
        let (shared, a_cols, cols) = (self.rows, self.cols, rhs.cols);
        let body = |row0: usize, chunk: &mut [f64]| {
            tr_matmul_block(&self.data, a_cols, &rhs.data, cols, shared, row0, chunk);
        };
        if shared * a_cols * cols >= PAR_MIN_MACS {
            par::par_for_chunks(&mut out.data, cols, |offset, chunk| body(offset / cols, chunk));
        } else {
            body(0, &mut out.data);
        }
        out
    }

    /// Transposed copy.
    #[must_use]
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Adds a 1×cols row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics unless `bias` is 1×cols.
    #[must_use]
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sums over rows, producing a 1×cols tensor (bias gradient).
    #[must_use]
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Scaled copy.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Tensor {
        let data = self.data.iter().map(|v| v * factor).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise map.
    #[must_use]
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Tensor {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Tensor { rows: self.rows, cols: self.cols, data }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Mean over every element.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }
}

/// Slice-level blocked matmul: `out = A · B` where `a` is `rows ×
/// inner` row-major, `b` is `inner × cols` row-major and `out` holds
/// `rows × cols`. This is the allocation-free entry the arena-backed
/// inference runtime writes into; [`Tensor::matmul`] delegates here, so
/// the two paths share one kernel and one parallel-dispatch decision —
/// per-element accumulation order (and therefore every bit of the
/// result) cannot drift between them.
///
/// `out` is zero-filled first; prior contents are ignored.
///
/// # Panics
///
/// Panics when the slice lengths disagree with the stated shapes.
pub fn matmul_slices(a: &[f64], rows: usize, inner: usize, b: &[f64], cols: usize, out: &mut [f64]) {
    assert_eq!(a.len(), rows * inner, "lhs length must equal rows*inner");
    assert_eq!(b.len(), inner * cols, "rhs length must equal inner*cols");
    assert_eq!(out.len(), rows * cols, "out length must equal rows*cols");
    out.fill(0.0);
    if rows * inner * cols >= PAR_MIN_MACS {
        par::par_for_chunks(out, cols, |offset, chunk| {
            matmul_block(a, inner, b, cols, offset / cols, chunk);
        });
    } else {
        matmul_block(a, inner, b, cols, 0, out);
    }
}

/// Computes `out_rows[row0..] = A[row0..] · B` for one contiguous block
/// of output rows. `out` holds whole rows (`out.len() % cols == 0`).
///
/// Accumulation order per output element is `k` ascending within
/// ascending [`BLOCK_K`] tiles — independent of how rows are split
/// across workers, which is what keeps parallel runs byte-identical.
fn matmul_block(a: &[f64], inner: usize, b: &[f64], cols: usize, row0: usize, out: &mut [f64]) {
    let nrows = out.len() / cols;
    for k0 in (0..inner).step_by(BLOCK_K) {
        let k1 = (k0 + BLOCK_K).min(inner);
        let mut r = 0;
        while r + MICRO_ROWS <= nrows {
            let block = &mut out[r * cols..(r + MICRO_ROWS) * cols];
            let (o0, block) = block.split_at_mut(cols);
            let (o1, block) = block.split_at_mut(cols);
            let (o2, o3) = block.split_at_mut(cols);
            let base = (row0 + r) * inner;
            for k in k0..k1 {
                let bk = &b[k * cols..(k + 1) * cols];
                axpy4(
                    o0,
                    o1,
                    o2,
                    o3,
                    bk,
                    [
                        a[base + k],
                        a[base + inner + k],
                        a[base + 2 * inner + k],
                        a[base + 3 * inner + k],
                    ],
                );
            }
            r += MICRO_ROWS;
        }
        while r < nrows {
            let out_row = &mut out[r * cols..(r + 1) * cols];
            let base = (row0 + r) * inner;
            for k in k0..k1 {
                axpy(out_row, &b[k * cols..(k + 1) * cols], a[base + k]);
            }
            r += 1;
        }
    }
}

/// Computes one contiguous block of `Aᵀ · B` output rows: output row
/// `p` accumulates `A[i, p] · B[i, ·]` over samples `i` (ascending, at
/// any thread count). The four `A` values per micro-step are contiguous
/// in memory, so the same [`axpy4`] micro-kernel applies.
fn tr_matmul_block(
    a: &[f64],
    a_cols: usize,
    b: &[f64],
    cols: usize,
    shared: usize,
    row0: usize,
    out: &mut [f64],
) {
    let nrows = out.len() / cols;
    let mut r = 0;
    while r + MICRO_ROWS <= nrows {
        let block = &mut out[r * cols..(r + MICRO_ROWS) * cols];
        let (o0, block) = block.split_at_mut(cols);
        let (o1, block) = block.split_at_mut(cols);
        let (o2, o3) = block.split_at_mut(cols);
        let p = row0 + r;
        for i in 0..shared {
            let base = i * a_cols + p;
            axpy4(
                o0,
                o1,
                o2,
                o3,
                &b[i * cols..(i + 1) * cols],
                [a[base], a[base + 1], a[base + 2], a[base + 3]],
            );
        }
        r += MICRO_ROWS;
    }
    while r < nrows {
        let out_row = &mut out[r * cols..(r + 1) * cols];
        let p = row0 + r;
        for i in 0..shared {
            axpy(out_row, &b[i * cols..(i + 1) * cols], a[i * a_cols + p]);
        }
        r += 1;
    }
}

/// `o_m += a_m · b` for four output rows at once, reusing each `b`
/// element from registers four times.
#[inline]
fn axpy4(o0: &mut [f64], o1: &mut [f64], o2: &mut [f64], o3: &mut [f64], b: &[f64], a: [f64; 4]) {
    let iter = b
        .iter()
        .zip(o0.iter_mut())
        .zip(o1.iter_mut())
        .zip(o2.iter_mut())
        .zip(o3.iter_mut());
    for ((((&bv, x0), x1), x2), x3) in iter {
        *x0 += a[0] * bv;
        *x1 += a[1] * bv;
        *x2 += a[2] * bv;
        *x3 += a[3] * bv;
    }
}

/// `out += a · b` over one row.
#[inline]
fn axpy(out: &mut [f64], b: &[f64], a: f64) {
    for (o, &bv) in out.iter_mut().zip(b) {
        *o += a * bv;
    }
}

/// Four-accumulator dot product of two contiguous rows. The lane split
/// and final combine order are fixed, so results are reproducible.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (qa, qb) in (&mut ca).zip(&mut cb) {
        lanes[0] += qa[0] * qb[0];
        lanes[1] += qa[1] * qb[1];
        lanes[2] += qa[2] * qb[2];
        lanes[3] += qa[3] * qb[3];
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_validates_widths() {
        let _ = Tensor::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).row(0), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).row(0), &[2.0, 2.0]);
        assert_eq!(a.hadamard(&b).row(0), &[3.0, 8.0]);
        assert_eq!(a.scaled(2.0).row(0), &[2.0, 4.0]);
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint() {
        let x = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let b = Tensor::from_rows(&[&[10.0, 20.0]]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.row(1), &[12.0, 22.0]);
        assert_eq!(y.sum_rows().row(0), &[23.0, 43.0]);
    }

    #[test]
    fn map_and_norm() {
        let t = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(t.frobenius_norm(), 5.0);
        assert_eq!(t.map(|v| v * v).row(0), &[9.0, 16.0]);
        assert_eq!(t.mean(), 3.5);
    }

    #[test]
    fn eye_is_identity_for_matmul() {
        let a = Tensor::from_rows(&[&[2.0, -1.0], &[0.5, 3.0]]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    /// Pseudo-random test matrix with entries in (-1, 1).
    fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
        use hmd_util::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0))
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= 1e-12 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_matmul_matches_naive_across_shapes() {
        // spans the micro-kernel remainder (rows % 4 ≠ 0), k-tiling
        // (inner > BLOCK_K), and the parallel threshold
        for (m, k, n, seed) in
            [(1, 1, 1, 0), (5, 3, 2, 1), (33, 150, 17, 2), (64, 64, 64, 3), (70, 200, 36, 4)]
        {
            let a = random_tensor(m, k, seed);
            let b = random_tensor(k, n, seed + 100);
            assert_close(&a.matmul(&b), &a.matmul_naive(&b));
        }
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        for (m, k, n, seed) in [(3, 5, 4, 10), (17, 33, 9, 11), (64, 64, 64, 12)] {
            let a = random_tensor(m, k, seed);
            let b = random_tensor(n, k, seed + 50);
            assert_close(&a.matmul_transposed(&b), &a.matmul_naive(&b.transposed()));
        }
    }

    #[test]
    fn tr_matmul_matches_explicit_transpose() {
        for (s, m, n, seed) in [(4, 3, 2, 20), (31, 18, 7, 21), (64, 64, 64, 22)] {
            let a = random_tensor(s, m, seed);
            let b = random_tensor(s, n, seed + 50);
            assert_close(&a.tr_matmul(&b), &a.transposed().matmul_naive(&b));
        }
    }

    #[test]
    #[should_panic(expected = "matmul_transposed shape mismatch")]
    fn matmul_transposed_rejects_mismatch() {
        let _ = Tensor::zeros(2, 3).matmul_transposed(&Tensor::zeros(2, 4));
    }

    #[test]
    #[should_panic(expected = "tr_matmul shape mismatch")]
    fn tr_matmul_rejects_mismatch() {
        let _ = Tensor::zeros(2, 3).tr_matmul(&Tensor::zeros(3, 2));
    }

    #[test]
    fn matmul_slices_matches_tensor_matmul_bitwise() {
        // spans the serial and parallel dispatch branches; the slice
        // entry must also scrub stale contents from the out buffer
        for (m, k, n, seed) in [(1, 4, 3, 40), (7, 33, 12, 41), (64, 64, 64, 42)] {
            let a = random_tensor(m, k, seed);
            let b = random_tensor(k, n, seed + 100);
            let mut out = vec![f64::NAN; m * n];
            matmul_slices(a.as_slice(), m, k, b.as_slice(), n, &mut out);
            assert_eq!(out, a.matmul(&b).as_slice());
        }
    }

    #[test]
    fn matmul_is_thread_count_invariant() {
        let a = random_tensor(67, 130, 30);
        let b = random_tensor(130, 41, 31);
        let c = random_tensor(67, 41, 32);
        hmd_util::par::set_thread_override(Some(1));
        let one = a.matmul(&b);
        let one_tr = a.tr_matmul(&c);
        hmd_util::par::set_thread_override(Some(4));
        let four = a.matmul(&b);
        let four_tr = a.tr_matmul(&c);
        hmd_util::par::set_thread_override(None);
        // byte-identical, not merely close
        assert_eq!(one, four);
        assert_eq!(one_tr, four_tr);
    }
}
