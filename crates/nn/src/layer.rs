//! Layers with hand-derived backward passes.

use hmd_util::rng::prelude::*;

use crate::init::{he_uniform, xavier_uniform};
use crate::Tensor;

/// One trainable parameter tensor together with its gradient and the
/// per-parameter optimizer state (Adam moments / SGD momentum buffer).
#[derive(Clone, Debug)]
pub struct ParamBlock {
    /// The parameter values.
    pub values: Tensor,
    /// Accumulated gradient, same shape as `values`.
    pub grads: Tensor,
    /// First-moment buffer (Adam `m`, or SGD momentum).
    pub moment1: Tensor,
    /// Second-moment buffer (Adam `v`).
    pub moment2: Tensor,
}

impl ParamBlock {
    /// Wraps freshly initialized values with zeroed gradient/state buffers.
    #[must_use]
    pub fn new(values: Tensor) -> Self {
        let (r, c) = values.shape();
        Self {
            values,
            grads: Tensor::zeros(r, c),
            moment1: Tensor::zeros(r, c),
            moment2: Tensor::zeros(r, c),
        }
    }

    /// Number of scalar parameters in this block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false (tensors are non-empty by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grads.as_mut_slice().fill(0.0);
    }
}

/// A differentiable network layer.
///
/// `forward` caches whatever the matching `backward` needs; calling
/// `backward` before `forward` panics. Layers are used both boxed inside
/// [`crate::Sequential`] and directly.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Computes the layer output for a batch (rows = samples).
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Propagates `grad_output` (∂L/∂output) back, accumulating parameter
    /// gradients and returning ∂L/∂input.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Layer::forward`].
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Computes the layer output without caching backward state —
    /// the inference path, usable through `&self`.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// Output row width for `in_cols`-wide input rows. Activations
    /// preserve width (the default); shape-changing layers (Dense,
    /// Conv1d) override. Warmup sizing walks a network's layer chain
    /// through this to bound every activation buffer without running
    /// data.
    fn out_cols(&self, in_cols: usize) -> usize {
        in_cols
    }

    /// Allocation-free inference: writes the layer output for `rows`
    /// row-major samples of width `cols` from `input` into `out`
    /// (`rows × out_cols(cols)` elements), bit-identical to
    /// [`Layer::infer`] on the same data. The default falls back to
    /// `infer` and copies — correct but allocating; every in-tree layer
    /// overrides it with a true in-place kernel.
    ///
    /// # Panics
    ///
    /// Panics when slice lengths disagree with the stated shapes.
    fn infer_into(&self, input: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
        let t = self.infer(&Tensor::from_vec(rows, cols, input.to_vec()));
        out.copy_from_slice(t.as_slice());
    }

    /// Mutable access to every trainable parameter block (empty for
    /// activations).
    fn param_blocks_mut(&mut self) -> Vec<&mut ParamBlock> {
        Vec::new()
    }

    /// Shared access to every trainable parameter block.
    fn param_blocks(&self) -> Vec<&ParamBlock> {
        Vec::new()
    }

    /// Total scalar parameter count.
    fn param_count(&self) -> usize {
        self.param_blocks().iter().map(|p| p.len()).sum()
    }
}

/// Fully connected layer: `y = x·W + b` with `W: (in, out)`.
///
/// # Example
///
/// ```
/// use hmd_nn::{Dense, Layer, Tensor};
/// use hmd_util::rng::prelude::*;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut dense = Dense::xavier(3, 2, &mut rng);
/// let y = dense.forward(&Tensor::zeros(4, 3));
/// assert_eq!(y.shape(), (4, 2));
/// assert_eq!(dense.param_count(), 3 * 2 + 2);
/// ```
#[derive(Debug)]
pub struct Dense {
    weights: ParamBlock,
    bias: ParamBlock,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Xavier-initialized dense layer (tanh/sigmoid/linear heads).
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    #[must_use]
    pub fn xavier<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self {
            weights: ParamBlock::new(xavier_uniform(in_dim, out_dim, rng)),
            bias: ParamBlock::new(Tensor::zeros(1, out_dim)),
            cached_input: None,
        }
    }

    /// He-initialized dense layer (ReLU stacks).
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    #[must_use]
    pub fn he<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self {
            weights: ParamBlock::new(he_uniform(in_dim, out_dim, rng)),
            bias: ParamBlock::new(Tensor::zeros(1, out_dim)),
            cached_input: None,
        }
    }

    /// Builds a dense layer from explicit weights and bias (testing,
    /// deserialization).
    ///
    /// # Panics
    ///
    /// Panics unless `bias` is `1×out` and matches `weights`' columns.
    #[must_use]
    pub fn from_parts(weights: Tensor, bias: Tensor) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), weights.cols(), "bias width must match weights");
        Self {
            weights: ParamBlock::new(weights),
            bias: ParamBlock::new(bias),
            cached_input: None,
        }
    }

    /// Input width.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.weights.values.rows()
    }

    /// Output width.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.weights.values.cols()
    }

    /// The weight matrix.
    #[must_use]
    pub fn weights(&self) -> &Tensor {
        &self.weights.values
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.matmul(&self.weights.values).add_row_broadcast(&self.bias.values)
    }

    fn out_cols(&self, in_cols: usize) -> usize {
        assert_eq!(in_cols, self.in_dim(), "dense input width mismatch");
        self.out_dim()
    }

    fn infer_into(&self, input: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
        // same kernel, then the same bias pass add_row_broadcast runs —
        // float-for-float the order of `matmul(..).add_row_broadcast(..)`
        crate::tensor::matmul_slices(
            input,
            rows,
            cols,
            self.weights.values.as_slice(),
            self.out_dim(),
            out,
        );
        let bias = self.bias.values.as_slice();
        for row in out.chunks_exact_mut(self.out_dim()) {
            for (o, &b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        // fused transposed kernels: no materialized transposed() copies
        let dw = input.tr_matmul(grad_output);
        self.weights.grads = self.weights.grads.add(&dw);
        self.bias.grads = self.bias.grads.add(&grad_output.sum_rows());
        grad_output.matmul_transposed(&self.weights.values)
    }

    fn param_blocks_mut(&mut self) -> Vec<&mut ParamBlock> {
        vec![&mut self.weights, &mut self.bias]
    }

    fn param_blocks(&self) -> Vec<&ParamBlock> {
        vec![&self.weights, &self.bias]
    }
}

/// Rectified linear unit activation.
#[derive(Debug, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// A new ReLU activation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input = Some(input.clone());
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(|v| v.max(0.0))
    }

    fn infer_into(&self, input: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
        map_into(input, rows, cols, out, |v| v.max(0.0));
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let mask = input.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        grad_output.hadamard(&mask)
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// A new tanh activation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        self.cached_output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(f64::tanh)
    }

    fn infer_into(&self, input: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
        map_into(input, rows, cols, out, f64::tanh);
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.cached_output.as_ref().expect("backward before forward");
        let deriv = out.map(|y| 1.0 - y * y);
        grad_output.hadamard(&deriv)
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// A new sigmoid activation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Numerically stable scalar sigmoid.
#[must_use]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        self.cached_output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(sigmoid)
    }

    fn infer_into(&self, input: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
        map_into(input, rows, cols, out, sigmoid);
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.cached_output.as_ref().expect("backward before forward");
        let deriv = out.map(|y| y * (1.0 - y));
        grad_output.hadamard(&deriv)
    }
}

/// Row-wise softmax activation.
///
/// Prefer fusing softmax into the cross-entropy loss for training
/// (see [`crate::Loss::SoftmaxCrossEntropy`]); this standalone layer exists
/// for policy heads that need explicit probabilities (the A2C actor).
#[derive(Debug, Default)]
pub struct Softmax {
    cached_output: Option<Tensor>,
}

impl Softmax {
    /// A new softmax activation.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Row-wise softmax of a tensor (shift-stabilized).
#[must_use]
pub fn softmax_rows(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

impl Layer for Softmax {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        self.cached_output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        softmax_rows(input)
    }

    fn infer_into(&self, input: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
        assert_eq!(input.len(), rows * cols, "input length must equal rows*cols");
        assert_eq!(out.len(), rows * cols, "out length must equal rows*cols");
        out.copy_from_slice(input);
        for row in out.chunks_exact_mut(cols) {
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let y = self.cached_output.as_ref().expect("backward before forward");
        // dL/dz_i = y_i * (g_i - Σ_j g_j y_j), row-wise
        let mut out = Tensor::zeros(y.rows(), y.cols());
        for r in 0..y.rows() {
            let dot: f64 =
                grad_output.row(r).iter().zip(y.row(r)).map(|(g, p)| g * p).sum();
            for c in 0..y.cols() {
                out.set(r, c, y.get(r, c) * (grad_output.get(r, c) - dot));
            }
        }
        out
    }
}

/// Shared elementwise `infer_into` body for activation layers — the
/// in-place mirror of [`Tensor::map`], element order included.
fn map_into(input: &[f64], rows: usize, cols: usize, out: &mut [f64], f: impl Fn(f64) -> f64) {
    assert_eq!(input.len(), rows * cols, "input length must equal rows*cols");
    assert_eq!(out.len(), rows * cols, "out length must equal rows*cols");
    for (o, &v) in out.iter_mut().zip(input) {
        *o = f(v);
    }
}

/// 1-D convolution over channel-major rows.
///
/// Each input row is interpreted as `in_channels` contiguous blocks of
/// length `L = width / in_channels`; the output row likewise holds
/// `out_channels` blocks of length `L − kernel + 1` (valid padding,
/// stride 1). This is how the paper's NN (2 conv + 3 FC layers) consumes
/// the 4-wide HPC vectors.
///
/// # Example
///
/// ```
/// use hmd_nn::{Conv1d, Layer, Tensor};
/// use hmd_util::rng::prelude::*;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut conv = Conv1d::new(1, 4, 2, &mut rng); // 1→4 channels, kernel 2
/// let y = conv.forward(&Tensor::zeros(8, 4));    // length 4 → length 3
/// assert_eq!(y.shape(), (8, 4 * 3));
/// ```
#[derive(Debug)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// Weights flattened as (out_channels, in_channels * kernel).
    weights: ParamBlock,
    bias: ParamBlock,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// A He-initialized 1-D convolution.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0, "conv dims must be positive");
        Self {
            in_channels,
            out_channels,
            kernel,
            weights: ParamBlock::new(he_uniform(out_channels, in_channels * kernel, rng)),
            bias: ParamBlock::new(Tensor::zeros(1, out_channels)),
            cached_input: None,
        }
    }

    /// Output row width for a given input row width.
    ///
    /// # Panics
    ///
    /// Panics unless `input_width` is a multiple of `in_channels` and long
    /// enough for the kernel.
    #[must_use]
    pub fn output_width(&self, input_width: usize) -> usize {
        assert_eq!(input_width % self.in_channels, 0, "width not divisible by channels");
        let len = input_width / self.in_channels;
        assert!(len >= self.kernel, "sequence shorter than kernel");
        self.out_channels * (len - self.kernel + 1)
    }

    fn seq_len(&self, input_width: usize) -> usize {
        input_width / self.in_channels
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = self.infer(input);
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let len = self.seq_len(input.cols());
        let out_len = len - self.kernel + 1;
        let mut out = Tensor::zeros(input.rows(), self.out_channels * out_len);
        for b in 0..input.rows() {
            let x = input.row(b);
            for oc in 0..self.out_channels {
                let w = self.weights.values.row(oc);
                let bias = self.bias.values.get(0, oc);
                for pos in 0..out_len {
                    let mut acc = bias;
                    for ic in 0..self.in_channels {
                        for k in 0..self.kernel {
                            acc += w[ic * self.kernel + k] * x[ic * len + pos + k];
                        }
                    }
                    out.set(b, oc * out_len + pos, acc);
                }
            }
        }
        out
    }

    fn out_cols(&self, in_cols: usize) -> usize {
        self.output_width(in_cols)
    }

    fn infer_into(&self, input: &[f64], rows: usize, cols: usize, out: &mut [f64]) {
        assert_eq!(input.len(), rows * cols, "input length must equal rows*cols");
        let len = self.seq_len(cols);
        let out_len = len - self.kernel + 1;
        let out_cols = self.out_channels * out_len;
        assert_eq!(out.len(), rows * out_cols, "out length must equal rows*out_cols");
        for b in 0..rows {
            let x = &input[b * cols..(b + 1) * cols];
            for oc in 0..self.out_channels {
                let w = self.weights.values.row(oc);
                let bias = self.bias.values.get(0, oc);
                for pos in 0..out_len {
                    let mut acc = bias;
                    for ic in 0..self.in_channels {
                        for k in 0..self.kernel {
                            acc += w[ic * self.kernel + k] * x[ic * len + pos + k];
                        }
                    }
                    out[b * out_cols + oc * out_len + pos] = acc;
                }
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward").clone();
        let len = self.seq_len(input.cols());
        let out_len = len - self.kernel + 1;
        let mut grad_input = Tensor::zeros(input.rows(), input.cols());
        for b in 0..input.rows() {
            let x = input.row(b);
            for oc in 0..self.out_channels {
                for pos in 0..out_len {
                    let g = grad_output.get(b, oc * out_len + pos);
                    if g == 0.0 {
                        continue;
                    }
                    let db = self.bias.grads.get(0, oc) + g;
                    self.bias.grads.set(0, oc, db);
                    for ic in 0..self.in_channels {
                        for k in 0..self.kernel {
                            let widx = ic * self.kernel + k;
                            let xidx = ic * len + pos + k;
                            let dw = self.weights.grads.get(oc, widx) + g * x[xidx];
                            self.weights.grads.set(oc, widx, dw);
                            let gi = grad_input.get(b, xidx)
                                + g * self.weights.values.get(oc, widx);
                            grad_input.set(b, xidx, gi);
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn param_blocks_mut(&mut self) -> Vec<&mut ParamBlock> {
        vec![&mut self.weights, &mut self.bias]
    }

    fn param_blocks(&self) -> Vec<&ParamBlock> {
        vec![&self.weights, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a layer's parameter and input
    /// gradients under an L = Σ out² loss.
    fn grad_check<L: Layer>(layer: &mut L, input: &Tensor, tol: f64) {
        // analytic
        let out = layer.forward(input);
        let grad_out = out.scaled(2.0); // dL/dout for L = Σ out²
        let grad_in = layer.backward(&grad_out);

        let loss = |layer: &mut L, x: &Tensor| -> f64 {
            let o = layer.forward(x);
            o.as_slice().iter().map(|v| v * v).sum()
        };

        // input gradient
        let eps = 1e-6;
        for i in 0..input.len() {
            let mut xp = input.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = input.clone();
            xm.as_mut_slice()[i] -= eps;
            let num = (loss(layer, &xp) - loss(layer, &xm)) / (2.0 * eps);
            let ana = grad_in.as_slice()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs()),
                "input grad {i}: numeric {num} vs analytic {ana}"
            );
        }

        // parameter gradients (re-run analytic pass to refresh grads)
        for block_idx in 0..layer.param_blocks().len() {
            let n = layer.param_blocks()[block_idx].len();
            for i in 0..n {
                for b in layer.param_blocks_mut() {
                    b.zero_grad();
                }
                let out = layer.forward(input);
                let grad_out = out.scaled(2.0);
                let _ = layer.backward(&grad_out);
                let ana = layer.param_blocks()[block_idx].grads.as_slice()[i];

                let orig = layer.param_blocks()[block_idx].values.as_slice()[i];
                layer.param_blocks_mut()[block_idx].values.as_mut_slice()[i] = orig + eps;
                let lp = loss(layer, input);
                layer.param_blocks_mut()[block_idx].values.as_mut_slice()[i] = orig - eps;
                let lm = loss(layer, input);
                layer.param_blocks_mut()[block_idx].values.as_mut_slice()[i] = orig;
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - ana).abs() <= tol * (1.0 + num.abs()),
                    "param grad block {block_idx} elem {i}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn dense_shapes_and_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::xavier(5, 3, &mut rng);
        assert_eq!(d.param_count(), 18);
        let y = d.forward(&Tensor::zeros(7, 5));
        assert_eq!(y.shape(), (7, 3));
    }

    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::xavier(4, 3, &mut rng);
        let x = Tensor::from_fn(2, 4, |_, _| rng.random_range(-1.0..1.0));
        grad_check(&mut d, &x, 1e-5);
    }

    #[test]
    fn relu_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        // keep values away from the kink at 0
        let x = Tensor::from_fn(3, 4, |_, _| {
            let v: f64 = rng.random_range(-1.0..1.0);
            if v.abs() < 0.1 {
                v + 0.2
            } else {
                v
            }
        });
        grad_check(&mut Relu::new(), &x, 1e-5);
    }

    #[test]
    fn tanh_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::from_fn(2, 3, |_, _| rng.random_range(-1.5..1.5));
        grad_check(&mut Tanh::new(), &x, 1e-5);
    }

    #[test]
    fn sigmoid_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::from_fn(2, 3, |_, _| rng.random_range(-2.0..2.0));
        grad_check(&mut Sigmoid::new(), &x, 1e-5);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let y = softmax_rows(&x);
        for r in 0..2 {
            let s: f64 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // large inputs stay finite (shift stabilization)
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::from_fn(2, 4, |_, _| rng.random_range(-1.0..1.0));
        grad_check(&mut Softmax::new(), &x, 1e-4);
    }

    #[test]
    fn conv1d_shapes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut conv = Conv1d::new(2, 3, 2, &mut rng);
        // 2 channels × length 5 = width 10 → 3 channels × length 4 = 12
        assert_eq!(conv.output_width(10), 12);
        let y = conv.forward(&Tensor::zeros(4, 10));
        assert_eq!(y.shape(), (4, 12));
        assert_eq!(conv.param_count(), 3 * 2 * 2 + 3);
    }

    #[test]
    fn conv1d_known_value() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut conv = Conv1d::new(1, 1, 2, &mut rng);
        // set kernel to [1, -1], bias 0.5 → output = x[i] - x[i+1] ... wait, w·window
        conv.param_blocks_mut()[0].values = Tensor::from_rows(&[&[1.0, -1.0]]);
        conv.param_blocks_mut()[1].values = Tensor::from_rows(&[&[0.5]]);
        let y = conv.forward(&Tensor::from_rows(&[&[3.0, 1.0, 4.0]]));
        assert_eq!(y.row(0), &[3.0 - 1.0 + 0.5, 1.0 - 4.0 + 0.5]);
    }

    #[test]
    fn conv1d_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = Conv1d::new(2, 2, 2, &mut rng);
        let x = Tensor::from_fn(2, 8, |_, _| rng.random_range(-1.0..1.0));
        grad_check(&mut conv, &x, 1e-5);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_before_forward_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut d = Dense::xavier(2, 2, &mut rng);
        let _ = d.backward(&Tensor::zeros(1, 2));
    }

    #[test]
    fn sigmoid_scalar_is_stable() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
        assert!(sigmoid(-800.0).is_finite() && sigmoid(800.0).is_finite());
    }
}
