//! Weight initialization schemes.

use hmd_util::rng::prelude::*;

use crate::Tensor;

/// Xavier/Glorot uniform initialization: samples from
/// `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
///
/// Suits tanh/sigmoid/linear layers.
///
/// # Panics
///
/// Panics if either fan is zero.
#[must_use]
pub fn xavier_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    assert!(rows > 0 && cols > 0, "fans must be positive");
    let limit = (6.0 / (rows + cols) as f64).sqrt();
    Tensor::from_fn(rows, cols, |_, _| rng.random_range(-limit..limit))
}

/// He/Kaiming uniform initialization: samples from
/// `U(−√(6/fan_in), +√(6/fan_in))`. Suits ReLU layers.
///
/// # Panics
///
/// Panics if either dimension is zero.
#[must_use]
pub fn he_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    assert!(rows > 0 && cols > 0, "fans must be positive");
    let limit = (6.0 / rows as f64).sqrt();
    Tensor::from_fn(rows, cols, |_, _| rng.random_range(-limit..limit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier_uniform(50, 30, &mut rng);
        let limit = (6.0 / 80.0f64).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= limit));
        // not degenerate
        assert!(t.frobenius_norm() > 0.0);
    }

    #[test]
    fn he_respects_limit() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = he_uniform(40, 10, &mut rng);
        let limit = (6.0 / 40.0f64).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(9));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
