//! Gradient-descent optimizers operating on [`ParamBlock`]s.

use crate::layer::ParamBlock;

/// A first-order optimizer.
///
/// Holds the hyper-parameters plus the global step counter (for Adam bias
/// correction); the per-parameter state lives inside each [`ParamBlock`].
///
/// # Example
///
/// ```
/// use hmd_nn::{Optimizer, ParamBlock, Tensor};
///
/// let mut opt = Optimizer::sgd(0.1);
/// let mut p = ParamBlock::new(Tensor::full(1, 1, 1.0));
/// p.grads = Tensor::full(1, 1, 2.0);
/// opt.step(&mut [&mut p]);
/// assert!((p.values.get(0, 0) - 0.8).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Optimizer {
    kind: OptimizerKind,
    t: u64,
}

#[derive(Clone, Debug, PartialEq)]
enum OptimizerKind {
    Sgd { lr: f64, momentum: f64 },
    Adam { lr: f64, beta1: f64, beta2: f64, eps: f64, weight_decay: f64 },
}

impl Optimizer {
    /// Plain stochastic gradient descent.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive learning rate.
    #[must_use]
    pub fn sgd(lr: f64) -> Self {
        Self::sgd_momentum(lr, 0.0)
    }

    /// SGD with classical momentum.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive learning rate or momentum outside [0, 1).
    #[must_use]
    pub fn sgd_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self { kind: OptimizerKind::Sgd { lr, momentum }, t: 0 }
    }

    /// Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive learning rate.
    #[must_use]
    pub fn adam(lr: f64) -> Self {
        Self::adamw(lr, 0.0)
    }

    /// AdamW: Adam with decoupled weight decay (Loshchilov & Hutter).
    ///
    /// # Panics
    ///
    /// Panics for a non-positive learning rate or negative decay.
    #[must_use]
    pub fn adamw(lr: f64, weight_decay: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self {
            kind: OptimizerKind::Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay },
            t: 0,
        }
    }

    /// The configured learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        match self.kind {
            OptimizerKind::Sgd { lr, .. } | OptimizerKind::Adam { lr, .. } => lr,
        }
    }

    /// Replaces the learning rate (for schedules).
    ///
    /// # Panics
    ///
    /// Panics for a non-positive learning rate.
    pub fn set_learning_rate(&mut self, new_lr: f64) {
        assert!(new_lr > 0.0, "learning rate must be positive");
        match &mut self.kind {
            OptimizerKind::Sgd { lr, .. } | OptimizerKind::Adam { lr, .. } => *lr = new_lr,
        }
    }

    /// Applies one update to every block from its accumulated gradients,
    /// then zeroes those gradients.
    pub fn step(&mut self, blocks: &mut [&mut ParamBlock]) {
        self.t += 1;
        match self.kind {
            OptimizerKind::Sgd { lr, momentum } => {
                for block in blocks.iter_mut() {
                    let g = block.grads.as_slice().to_vec();
                    let m = block.moment1.as_mut_slice();
                    let vals = block.values.as_mut_slice();
                    for i in 0..vals.len() {
                        m[i] = momentum * m[i] + g[i];
                        vals[i] -= lr * m[i];
                    }
                    block.zero_grad();
                }
            }
            OptimizerKind::Adam { lr, beta1, beta2, eps, weight_decay } => {
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                for block in blocks.iter_mut() {
                    let g = block.grads.as_slice().to_vec();
                    for (i, &gi) in g.iter().enumerate() {
                        let m = &mut block.moment1.as_mut_slice()[i];
                        *m = beta1 * *m + (1.0 - beta1) * gi;
                        let m_hat = *m / bc1;
                        let v = &mut block.moment2.as_mut_slice()[i];
                        *v = beta2 * *v + (1.0 - beta2) * gi * gi;
                        let v_hat = *v / bc2;
                        let value = &mut block.values.as_mut_slice()[i];
                        // decoupled decay: applied to the value, not the gradient
                        *value -= lr * (m_hat / (v_hat.sqrt() + eps) + weight_decay * *value);
                    }
                    block.zero_grad();
                }
            }
        }
    }

    /// Number of steps taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn quadratic_grad(p: &ParamBlock) -> Tensor {
        // L = (x - 3)² → dL/dx = 2(x - 3)
        p.values.map(|x| 2.0 * (x - 3.0))
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = ParamBlock::new(Tensor::full(1, 1, 0.0));
        let mut opt = Optimizer::sgd(0.1);
        for _ in 0..200 {
            p.grads = quadratic_grad(&p);
            opt.step(&mut [&mut p]);
        }
        assert!((p.values.get(0, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = ParamBlock::new(Tensor::full(1, 1, -5.0));
        let mut opt = Optimizer::adam(0.2);
        for _ in 0..500 {
            p.grads = quadratic_grad(&p);
            opt.step(&mut [&mut p]);
        }
        assert!((p.values.get(0, 0) - 3.0).abs() < 1e-3);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn momentum_accelerates_along_consistent_gradient() {
        let mut plain = ParamBlock::new(Tensor::full(1, 1, 0.0));
        let mut with_m = ParamBlock::new(Tensor::full(1, 1, 0.0));
        let mut o1 = Optimizer::sgd(0.01);
        let mut o2 = Optimizer::sgd_momentum(0.01, 0.9);
        for _ in 0..10 {
            plain.grads = Tensor::full(1, 1, 1.0);
            with_m.grads = Tensor::full(1, 1, 1.0);
            o1.step(&mut [&mut plain]);
            o2.step(&mut [&mut with_m]);
        }
        assert!(with_m.values.get(0, 0) < plain.values.get(0, 0));
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = ParamBlock::new(Tensor::full(2, 2, 1.0));
        p.grads = Tensor::full(2, 2, 1.0);
        Optimizer::adam(0.01).step(&mut [&mut p]);
        assert!(p.grads.as_slice().iter().all(|g| *g == 0.0));
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Optimizer::adam(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.005);
        assert_eq!(opt.learning_rate(), 0.005);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Optimizer::sgd(0.0);
    }

    #[test]
    fn adamw_decay_shrinks_unused_weights() {
        // with zero gradient, AdamW still decays the parameter toward 0
        let mut p = ParamBlock::new(Tensor::full(1, 1, 1.0));
        let mut opt = Optimizer::adamw(0.1, 0.1);
        for _ in 0..50 {
            p.grads = Tensor::full(1, 1, 0.0);
            opt.step(&mut [&mut p]);
        }
        let v = p.values.get(0, 0);
        assert!(v < 0.7, "decayed value {v}");
        // plain Adam leaves the weight untouched at zero gradient
        let mut q = ParamBlock::new(Tensor::full(1, 1, 1.0));
        let mut plain = Optimizer::adam(0.1);
        for _ in 0..50 {
            q.grads = Tensor::full(1, 1, 0.0);
            plain.step(&mut [&mut q]);
        }
        assert_eq!(q.values.get(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "weight decay")]
    fn rejects_negative_decay() {
        let _ = Optimizer::adamw(0.1, -0.1);
    }
}
