//! Loss functions returning `(scalar loss, gradient w.r.t. prediction)`.

use crate::layer::{sigmoid, softmax_rows};
use crate::Tensor;

/// Supported training losses.
///
/// Every variant returns the mean loss over the batch and the gradient of
/// that mean with respect to the network *output* (logits for the
/// cross-entropy variants), ready to feed into
/// [`crate::Sequential::backward`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Loss {
    /// Mean squared error over all elements. Targets: same shape as
    /// predictions. Used by the A2C critic.
    Mse,
    /// Softmax + categorical cross-entropy, fused for numerical stability.
    /// Predictions are raw logits; targets are one-hot rows.
    SoftmaxCrossEntropy,
    /// Sigmoid + binary cross-entropy, fused ("BCE with logits").
    /// Predictions are one logit per row (any width ≥ 1, applied
    /// element-wise); targets are 0/1 of the same shape.
    BinaryCrossEntropy,
}

impl Loss {
    /// Computes `(loss, dloss/dpred)` for a batch.
    ///
    /// # Panics
    ///
    /// Panics if `pred` and `target` shapes differ.
    #[must_use]
    pub fn compute(self, pred: &Tensor, target: &Tensor) -> (f64, Tensor) {
        assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
        let n = pred.rows() as f64;
        match self {
            Loss::Mse => {
                let diff = pred.sub(target);
                let loss =
                    diff.as_slice().iter().map(|v| v * v).sum::<f64>() / pred.len() as f64;
                let grad = diff.scaled(2.0 / pred.len() as f64);
                (loss, grad)
            }
            Loss::SoftmaxCrossEntropy => {
                let probs = softmax_rows(pred);
                let mut loss = 0.0;
                for r in 0..pred.rows() {
                    for c in 0..pred.cols() {
                        let t = target.get(r, c);
                        if t > 0.0 {
                            loss -= t * probs.get(r, c).max(1e-15).ln();
                        }
                    }
                }
                let grad = probs.sub(target).scaled(1.0 / n);
                (loss / n, grad)
            }
            Loss::BinaryCrossEntropy => {
                let mut loss = 0.0;
                let mut grad = Tensor::zeros(pred.rows(), pred.cols());
                let count = pred.len() as f64;
                for r in 0..pred.rows() {
                    for c in 0..pred.cols() {
                        let z = pred.get(r, c);
                        let t = target.get(r, c);
                        // log(1 + e^-|z|) + max(z,0) - t*z is the stable form
                        loss += (1.0 + (-z.abs()).exp()).ln() + z.max(0.0) - t * z;
                        grad.set(r, c, (sigmoid(z) - t) / count);
                    }
                }
                (loss / count, grad)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(loss: Loss, pred: &Tensor, target: &Tensor, tol: f64) {
        let (_, grad) = loss.compute(pred, target);
        let eps = 1e-6;
        for i in 0..pred.len() {
            let mut p = pred.clone();
            p.as_mut_slice()[i] += eps;
            let (lp, _) = loss.compute(&p, target);
            p.as_mut_slice()[i] -= 2.0 * eps;
            let (lm, _) = loss.compute(&p, target);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grad.as_slice()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs()),
                "{loss:?} grad {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn mse_zero_at_perfect_prediction() {
        let p = Tensor::from_rows(&[&[1.0, 2.0]]);
        let (l, g) = Loss::Mse.compute(&p, &p);
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn mse_gradient_matches() {
        let p = Tensor::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]);
        let t = Tensor::from_rows(&[&[1.0, 0.0], &[1.5, -0.5]]);
        finite_diff_check(Loss::Mse, &p, &t, 1e-6);
    }

    #[test]
    fn softmax_ce_matches_manual() {
        // logits [0, 0] with one-hot [1, 0] → loss = ln 2
        let p = Tensor::from_rows(&[&[0.0, 0.0]]);
        let t = Tensor::from_rows(&[&[1.0, 0.0]]);
        let (l, _) = Loss::SoftmaxCrossEntropy.compute(&p, &t);
        assert!((l - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn softmax_ce_gradient_matches() {
        let p = Tensor::from_rows(&[&[0.3, -0.7, 1.1], &[-0.2, 0.9, 0.1]]);
        let t = Tensor::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0]]);
        finite_diff_check(Loss::SoftmaxCrossEntropy, &p, &t, 1e-6);
    }

    #[test]
    fn bce_matches_manual() {
        // logit 0 → p=0.5 → loss = ln 2 regardless of target
        let p = Tensor::from_rows(&[&[0.0]]);
        let t = Tensor::from_rows(&[&[1.0]]);
        let (l, _) = Loss::BinaryCrossEntropy.compute(&p, &t);
        assert!((l - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn bce_gradient_matches() {
        let p = Tensor::from_rows(&[&[0.5], &[-1.2], &[3.0]]);
        let t = Tensor::from_rows(&[&[1.0], &[0.0], &[1.0]]);
        finite_diff_check(Loss::BinaryCrossEntropy, &p, &t, 1e-6);
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let p = Tensor::from_rows(&[&[500.0], &[-500.0]]);
        let t = Tensor::from_rows(&[&[1.0], &[0.0]]);
        let (l, g) = Loss::BinaryCrossEntropy.compute(&p, &t);
        assert!(l.is_finite());
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "loss shape mismatch")]
    fn rejects_shape_mismatch() {
        let p = Tensor::zeros(1, 2);
        let t = Tensor::zeros(2, 2);
        let _ = Loss::Mse.compute(&p, &t);
    }
}
