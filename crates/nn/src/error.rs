use std::error::Error;
use std::fmt;

/// Errors produced by the neural-network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A flattened parameter buffer had the wrong length for the network.
    ParamLengthMismatch {
        /// Number of parameters the network holds.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ParamLengthMismatch { expected, actual } => {
                write!(f, "parameter buffer has {actual} values, network expects {expected}")
            }
        }
    }
}

impl Error for NnError {}
