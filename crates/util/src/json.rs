//! Minimal JSON: a value model, a serializer whose output is
//! byte-deterministic (object fields keep insertion order), a strict
//! parser, and the [`impl_json!`](crate::impl_json) /
//! [`impl_to_json!`](crate::impl_to_json) macros that replace
//! `#[derive(Serialize, Deserialize)]` without proc-macros.
//!
//! # Example
//!
//! ```
//! use hmd_util::impl_json;
//! use hmd_util::json::{FromJson, Json, ToJson};
//!
//! #[derive(Debug, PartialEq)]
//! struct Point {
//!     x: f64,
//!     y: f64,
//! }
//! impl_json!(struct Point { x, y });
//!
//! let p = Point { x: 1.5, y: -2.0 };
//! let text = p.to_json().to_string();
//! assert_eq!(text, r#"{"x":1.5,"y":-2.0}"#);
//! let back = Point::from_json(&Json::parse(&text).unwrap()).unwrap();
//! assert_eq!(back, p);
//! ```

use std::fmt;

/// A JSON value.
///
/// Objects are ordered `(key, value)` pairs — not a hash map — so that
/// serialization is deterministic: the same report serializes to the
/// same bytes on every run, which the reproducibility suite asserts.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer (parsed when the literal is integral and fits).
    Int(i64),
    /// An unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// A floating-point number. Non-finite values serialize as `null`
    /// (JSON has no representation for them).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse or conversion error, with a byte offset for parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    offset: Option<usize>,
}

impl JsonError {
    /// An error without positional information (conversion errors).
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into(), offset: None }
    }

    fn at(message: impl Into<String>, offset: usize) -> Self {
        Self { message: message.into(), offset: Some(offset) }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} (at byte {off})", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing characters after value", p.pos));
        }
        Ok(v)
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into an array.
    #[must_use]
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The value as `f64`, accepting any numeric variant.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `&str` for string variants.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace).
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let mut buf = itoa_buffer();
                out.push_str(write_display(&mut buf, i));
            }
            Json::UInt(u) => {
                let mut buf = itoa_buffer();
                out.push_str(write_display(&mut buf, u));
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let mut buf = itoa_buffer();
                    let text = write_display(&mut buf, f);
                    out.push_str(text);
                    // Whole floats print like integers ("0"); keep the
                    // float-ness explicit so parsing round-trips the
                    // variant (and the byte-determinism tests stay
                    // honest about types).
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty serialization with two-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

// A tiny formatting shim: routes Display through one stack buffer so
// number serialization never allocates a temporary String per value.
fn itoa_buffer() -> String {
    String::with_capacity(24)
}

fn write_display<T: fmt::Display>(buf: &mut String, value: T) -> &str {
    use fmt::Write as _;
    buf.clear();
    let _ = write!(buf, "{value}");
    buf.as_str()
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected '{word}'"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(JsonError::at(format!("unexpected character '{}'", other as char), self.pos))
            }
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::at("invalid UTF-8 in string", start))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => {
                    return Err(JsonError::at("unescaped control character in string", self.pos))
                }
                None => return Err(JsonError::at("unterminated string", self.pos)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(JsonError::at("unterminated escape", self.pos));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(JsonError::at("invalid low surrogate", self.pos));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(JsonError::at("lone high surrogate", self.pos));
                    }
                } else {
                    hi
                };
                let c = char::from_u32(code)
                    .ok_or_else(|| JsonError::at("invalid unicode escape", self.pos))?;
                out.push(c);
            }
            other => {
                return Err(JsonError::at(
                    format!("invalid escape '\\{}'", other as char),
                    self.pos - 1,
                ))
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(JsonError::at("truncated \\u escape", self.pos));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(JsonError::at("invalid hex digit in \\u escape", self.pos)),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at("invalid number", start))?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::at(format!("invalid number '{text}'"), start))
    }
}

// ---------------------------------------------------------------------------
// ToJson / FromJson
// ---------------------------------------------------------------------------

/// Serialization into a [`Json`] value.
pub trait ToJson {
    /// This value as JSON.
    fn to_json(&self) -> Json;
}

/// Deserialization from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs the value.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on shape or range mismatches.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_bool().ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_str().map(str::to_owned).ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_f64().ok_or_else(|| JsonError::new("expected number"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_f64().map(|f| f as f32).ok_or_else(|| JsonError::new("expected number"))
    }
}

macro_rules! json_signed {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(i64::from(*self))
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                let i = match *value {
                    Json::Int(i) => i,
                    Json::UInt(u) => i64::try_from(u)
                        .map_err(|_| JsonError::new("integer out of range"))?,
                    _ => return Err(JsonError::new("expected integer")),
                };
                <$t>::try_from(i).map_err(|_| JsonError::new(concat!(
                    "integer out of range for ", stringify!($t))))
            }
        }
    )+};
}
json_signed!(i8, i16, i32, i64);

macro_rules! json_unsigned {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = u64::try_from(*self).expect("unsigned fits u64");
                match i64::try_from(v) {
                    Ok(i) => Json::Int(i),
                    Err(_) => Json::UInt(v),
                }
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                let u = match *value {
                    Json::Int(i) => u64::try_from(i)
                        .map_err(|_| JsonError::new("negative integer for unsigned field"))?,
                    Json::UInt(u) => u,
                    _ => return Err(JsonError::new("expected integer")),
                };
                <$t>::try_from(u).map_err(|_| JsonError::new(concat!(
                    "integer out of range for ", stringify!($t))))
            }
        }
    )+};
}
json_unsigned!(u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        T::from_json(value).map(Box::new)
    }
}

macro_rules! json_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                let items = value.as_arr().ok_or_else(|| JsonError::new("expected array"))?;
                let want = [$( $idx, )+].len();
                if items.len() != want {
                    return Err(JsonError::new(format!(
                        "expected {}-element array, got {}", want, items.len())));
                }
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    )+};
}
json_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Extracts and converts one named field of a JSON object — the
/// workhorse of [`impl_json!`](crate::impl_json)-generated `FromJson`
/// impls.
///
/// # Errors
///
/// Returns [`JsonError`] if `value` is not an object, the field is
/// missing, or conversion fails.
pub fn field<T: FromJson>(value: &Json, name: &str) -> Result<T, JsonError> {
    let inner = match value {
        Json::Obj(_) => value
            .get(name)
            .ok_or_else(|| JsonError::new(format!("missing field '{name}'")))?,
        _ => return Err(JsonError::new(format!("expected object with field '{name}'"))),
    };
    T::from_json(inner)
        .map_err(|e| JsonError::new(format!("field '{name}': {e}")))
}

/// Implements [`ToJson`](crate::json::ToJson) *and*
/// [`FromJson`](crate::json::FromJson) for a struct with named fields
/// or an enum of unit variants — the replacement for
/// `#[derive(Serialize, Deserialize)]`.
///
/// ```
/// use hmd_util::impl_json;
///
/// #[derive(Debug, PartialEq)]
/// struct Sample { label: String, score: f64 }
/// impl_json!(struct Sample { label, score });
///
/// #[derive(Debug, PartialEq)]
/// enum Kind { Fast, Slow }
/// impl_json!(enum Kind { Fast, Slow });
/// ```
#[macro_export]
macro_rules! impl_json {
    (struct $ty:ident { $($field:ident),+ $(,)? }) => {
        $crate::impl_to_json!(struct $ty { $($field),+ });
        impl $crate::json::FromJson for $ty {
            fn from_json(value: &$crate::json::Json)
                -> ::std::result::Result<Self, $crate::json::JsonError>
            {
                Ok(Self { $($field: $crate::json::field(value, stringify!($field))?,)+ })
            }
        }
    };
    (enum $ty:ident { $($variant:ident),+ $(,)? }) => {
        $crate::impl_to_json!(enum $ty { $($variant),+ });
        impl $crate::json::FromJson for $ty {
            fn from_json(value: &$crate::json::Json)
                -> ::std::result::Result<Self, $crate::json::JsonError>
            {
                match value.as_str() {
                    $(Some(stringify!($variant)) => Ok(Self::$variant),)+
                    _ => Err($crate::json::JsonError::new(concat!(
                        "expected one of the ", stringify!($ty), " variant names"))),
                }
            }
        }
    };
}

/// Implements only [`ToJson`](crate::json::ToJson) — for report types
/// that are serialized but never parsed back, or whose fields (e.g.
/// `&'static str`) cannot be deserialized.
#[macro_export]
macro_rules! impl_to_json {
    (struct $ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(::std::vec![
                    $((stringify!($field).to_owned(),
                       $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
    (enum $ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $(Self::$variant => $crate::json::Json::Str(stringify!($variant).to_owned()),)+
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Inner {
        id: u64,
        weight: f64,
    }
    impl_json!(struct Inner { id, weight });

    #[derive(Debug, PartialEq)]
    struct Outer {
        name: String,
        flags: Vec<bool>,
        inner: Inner,
        trace: Vec<(bool, f64)>,
        note: Option<String>,
    }
    impl_json!(struct Outer { name, flags, inner, trace, note });

    #[derive(Debug, PartialEq)]
    enum Label {
        Benign,
        Malware,
    }
    impl_json!(enum Label { Benign, Malware });

    fn sample() -> Outer {
        Outer {
            name: "run \"7\"\n".into(),
            flags: vec![true, false],
            inner: Inner { id: u64::MAX, weight: -0.25 },
            trace: vec![(true, 1.5), (false, 0.0)],
            note: None,
        }
    }

    #[test]
    fn struct_roundtrip_is_exact() {
        let v = sample();
        let text = v.to_json().to_string();
        let back = Outer::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn serialization_is_deterministic_and_ordered() {
        let text = sample().to_json().to_string();
        assert_eq!(text, sample().to_json().to_string());
        // field order = declaration order
        let name_pos = text.find("\"name\"").unwrap();
        let inner_pos = text.find("\"inner\"").unwrap();
        assert!(name_pos < inner_pos);
    }

    #[test]
    fn escapes_serialize_and_parse() {
        let s = "line\nquote\"back\\slash\ttab\u{1}";
        let text = Json::Str(s.into()).to_string();
        assert_eq!(Json::parse(&text).unwrap(), Json::Str(s.into()));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        // surrogate pair: U+1F600
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn numbers_parse_into_narrowest_variant() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(Json::parse("1.5e3").unwrap(), Json::Float(1500.0));
    }

    #[test]
    fn u64_above_i64_roundtrips() {
        let v = u64::MAX - 3;
        let text = v.to_json().to_string();
        assert_eq!(u64::from_json(&Json::parse(&text).unwrap()).unwrap(), v);
    }

    #[test]
    fn enums_serialize_as_variant_names() {
        assert_eq!(Label::Malware.to_json().to_string(), r#""Malware""#);
        assert_eq!(
            Label::from_json(&Json::parse(r#""Benign""#).unwrap()).unwrap(),
            Label::Benign
        );
        assert!(Label::from_json(&Json::parse(r#""Ghost""#).unwrap()).is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn float_display_roundtrips() {
        for f in [0.1, 1.0 / 3.0, 1e-300, -2.5e17, f64::MAX, 5e-324] {
            let text = Json::Float(f).to_string();
            let Json::Float(back) = Json::parse(&text).unwrap() else {
                // integral-looking floats (like 1e300 printed without '.')
                // come back as ints; accept via as_f64
                assert_eq!(Json::parse(&text).unwrap().as_f64().unwrap(), f);
                continue;
            };
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = Json::parse("[1, 2").unwrap_err();
        assert!(err.to_string().contains("byte"), "{err}");
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("01x").is_err());
        assert!(Json::parse("[] trailing").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().at(1).unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn missing_field_names_the_field() {
        let err = Inner::from_json(&Json::parse(r#"{"id": 3}"#).unwrap()).unwrap_err();
        assert!(err.to_string().contains("weight"), "{err}");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = sample().to_json();
        let pretty = v.pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }
}
