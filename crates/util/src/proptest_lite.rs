//! Seeded property-based testing with shrink-on-failure.
//!
//! A deliberately small replacement for `proptest`: strategies are
//! plain values (ranges, combinators), generation is driven by the
//! workspace's own [`StdRng`](crate::rng::StdRng) (so a failing case
//! reproduces from the test name alone), and failures are greedily
//! shrunk toward the range start before being reported.
//!
//! # Example
//!
//! ```
//! use hmd_util::{prop_assert, prop_tests};
//!
//! prop_tests! {
//!     cases = 16;
//!
//!     /// Addition never loses mass.
//!     fn sum_is_monotone(a in 0.0f64..100.0, b in 0.0f64..100.0) {
//!         prop_assert!(a + b >= a);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! Set `HMD_PROP_SEED=<u64>` to re-run a suite with a different seed
//! stream, and `HMD_PROP_CASES=<n>` to scale case counts up (e.g. a
//! nightly soak) without touching the source.

use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{Rng, StdRng};

/// A generator of test inputs with an optional shrinker.
pub trait Strategy {
    /// The generated input type.
    type Value: Clone + std::fmt::Debug;

    /// Draws one input.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of a failing input, simplest first.
    /// An empty vector ends shrinking for this value.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! range_strategy {
    (float: $($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v != self.start {
                    out.push(self.start);
                    let mid = self.start + (v - self.start) / 2.0;
                    if mid != v && mid != self.start {
                        out.push(mid);
                    }
                }
                out
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (start, v) = (*self.start(), *value);
                let mut out = Vec::new();
                if v != start {
                    out.push(start);
                    let mid = start + (v - start) / 2.0;
                    if mid != v && mid != start {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )+};
    (int: $($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(self.start, *value)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*self.start(), *value)
            }
        }

        impl ShrinkInt for $t {
            fn half_toward(self, start: Self) -> Self {
                start + (self - start) / 2
            }
            fn decrement(self) -> Self {
                self - 1
            }
        }
    )+};
}
/// Integer shrink arithmetic shared by the range strategies.
trait ShrinkInt: Copy + PartialEq {
    fn half_toward(self, start: Self) -> Self;
    fn decrement(self) -> Self;
}

/// Shrink candidates for an integer: the range start, the halfway
/// point, and the predecessor. The predecessor guarantees greedy
/// shrinking converges to the *smallest* failing input (the halving
/// candidates alone can stall above a failure boundary).
fn shrink_int<T: ShrinkInt>(start: T, value: T) -> Vec<T> {
    let mut out = Vec::new();
    if value == start {
        return out;
    }
    out.push(start);
    let mid = value.half_toward(start);
    if mid != value && mid != start {
        out.push(mid);
    }
    let prev = value.decrement();
    if prev != start && prev != mid {
        out.push(prev);
    }
    out
}

range_strategy!(float: f64, f32);
range_strategy!(int: u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A fixed value (no generation, no shrinking).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy, VecStrategy};

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`. `size` accepts a fixed `usize`, `a..b`, or
    /// `a..=b`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy { element, size }
    }
}

/// An inclusive-min, exclusive-max length range for collections.
#[derive(Copy, Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { min: *r.start(), max: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` (see [`collection::vec`]).
#[derive(Clone, Debug)]
pub struct VecStrategy<S: Strategy> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min + 1 >= self.size.max {
            self.size.min
        } else {
            rng.random_range(self.size.min..self.size.max)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // 1. Shorter vectors first: halve, then drop one.
        if value.len() > self.size.min {
            let half = (value.len() / 2).max(self.size.min);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
        }
        // 2. Then simpler elements, one position at a time (first
        //    candidate each, to bound the fan-out).
        for (i, elem) in value.iter().enumerate() {
            if let Some(simpler) = self.element.shrink(elem).into_iter().next() {
                let mut next = value.clone();
                next[i] = simpler;
                out.push(next);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}
tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Deterministic per-test seed: FNV-1a over the test name, overridable
/// with `HMD_PROP_SEED`.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("HMD_PROP_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            return seed;
        }
    }
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Effective case count: the declared count, overridable upward or
/// downward with `HMD_PROP_CASES`.
#[must_use]
pub fn effective_cases(declared: u32) -> u32 {
    std::env::var("HMD_PROP_CASES")
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
        .unwrap_or(declared)
}

/// Maximum shrink candidates evaluated per failure.
const SHRINK_BUDGET: usize = 512;

/// Runs `test` against `cases` inputs drawn from `strategy`; on
/// failure, shrinks greedily and panics with the minimized
/// counterexample.
///
/// This is the engine behind [`prop_tests!`](crate::prop_tests);
/// calling it directly is fine when the macro's surface doesn't fit.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) if any case fails.
pub fn run_property<S: Strategy>(name: &str, cases: u32, strategy: &S, test: impl Fn(&S::Value)) {
    let cases = effective_cases(cases);
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let passes = |input: &S::Value| catch_unwind(AssertUnwindSafe(|| test(input))).is_ok();
    for case in 0..cases {
        let input = strategy.sample(&mut rng);
        if passes(&input) {
            continue;
        }
        // Greedy shrink: accept the first failing candidate each round.
        let mut minimal = input;
        let mut budget = SHRINK_BUDGET;
        'outer: while budget > 0 {
            for candidate in strategy.shrink(&minimal) {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                if !passes(&candidate) {
                    minimal = candidate;
                    continue 'outer;
                }
            }
            break;
        }
        panic!(
            "property `{name}` failed on case {case}/{cases}\n\
             minimized counterexample: {minimal:#?}\n\
             (re-run deterministically: the suite is seeded from the test name; \
             HMD_PROP_SEED overrides)"
        );
    }
}

/// Declares a block of property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// running `cases` seeded inputs through the body; assertion macros
/// ([`prop_assert!`](crate::prop_assert),
/// [`prop_assert_eq!`](crate::prop_assert_eq) or plain `assert!`)
/// report failures, which are then shrunk.
#[macro_export]
macro_rules! prop_tests {
    (
        cases = $cases:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let strategy = ($($strategy,)+);
                $crate::proptest_lite::run_property(
                    stringify!($name),
                    $cases,
                    &strategy,
                    |&($(ref $arg,)+)| {
                        $(let $arg = ::std::clone::Clone::clone($arg);)+
                        $body
                    },
                );
            }
        )*
    };
}

/// `assert!` under a property-test-flavored name (proptest
/// compatibility).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { ::std::assert!($($tokens)*) };
}

/// `assert_eq!` under a property-test-flavored name (proptest
/// compatibility).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { ::std::assert_eq!($($tokens)*) };
}

/// `assert_ne!` under a property-test-flavored name (proptest
/// compatibility).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { ::std::assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let u = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn fixed_size_vec() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = collection::vec(0.0f64..1.0, 3);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng).len(), 3);
        }
    }

    #[test]
    fn ranged_size_vec() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = collection::vec(0u32..10, 2..40);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!((2..40).contains(&v.len()));
            lens.insert(v.len());
        }
        assert!(lens.len() > 10, "length barely varies: {lens:?}");
    }

    #[test]
    fn numeric_shrink_moves_toward_start() {
        let s = 10u64..100;
        let candidates = s.shrink(&80);
        assert!(candidates.contains(&10));
        assert!(candidates.iter().all(|&c| (10..80).contains(&c)));
        assert!(s.shrink(&10).is_empty());
    }

    #[test]
    fn vec_shrink_prefers_shorter() {
        let s = collection::vec(0u64..100, 2..40);
        let v: Vec<u64> = (0..10).map(|i| i + 50).collect();
        let candidates = s.shrink(&v);
        assert!(!candidates.is_empty());
        assert!(candidates[0].len() < v.len());
        // never below the minimum length
        assert!(candidates.iter().all(|c| c.len() >= 2));
    }

    #[test]
    fn run_property_passes_good_properties() {
        run_property("commutativity", 64, &(0.0f64..10.0, 0.0f64..10.0), |&(a, b)| {
            assert!((a + b - (b + a)).abs() < 1e-12);
        });
    }

    #[test]
    fn failing_property_is_shrunk_to_boundary() {
        // The property "v < 50" fails for v >= 50; greedy shrinking
        // should land near the smallest failing input.
        let failure = catch_unwind(AssertUnwindSafe(|| {
            run_property("shrinks", 200, &(0u64..100), |&v| {
                assert!(v < 50, "too big");
            });
        }))
        .expect_err("property must fail");
        let msg = failure
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("minimized counterexample"), "{msg}");
        // The minimal counterexample for v>=50 under halving shrinks is
        // exactly 50.
        assert!(msg.contains("50"), "{msg}");
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(seed_for("abc"), seed_for("abc"));
        assert_ne!(seed_for("abc"), seed_for("abd"));
    }

    prop_tests! {
        cases = 32;

        /// The macro itself: multiple args, trailing comma, vec strategy.
        fn macro_generates_working_tests(
            scale in 1.0f64..4.0,
            xs in collection::vec(0.0f64..1.0, 1..8),
        ) {
            let sum: f64 = xs.iter().sum();
            prop_assert!(sum * scale >= 0.0);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
