//! Deterministic pseudo-randomness for the whole workspace.
//!
//! The generator is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, the canonical pairing recommended by the xoshiro
//! authors: SplitMix64 decorrelates small or similar seeds before they
//! reach the xoshiro state, and xoshiro256++ passes BigCrush while
//! costing a handful of ALU ops per draw.
//!
//! The API mirrors the subset of the `rand` prelude this workspace
//! uses, so call sites migrate with a one-line import swap:
//!
//! ```
//! use hmd_util::rng::prelude::*;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.random();
//! let i = rng.random_range(0..10usize);
//! let coin = rng.random_bool(0.5);
//! let mut order: Vec<usize> = (0..8).collect();
//! order.shuffle(&mut rng);
//! assert!((0.0..1.0).contains(&x) && i < 10);
//! let _ = (coin, order);
//! ```
//!
//! Determinism is a correctness property here, not a convenience: the
//! paper's seeded pipeline (corpus → LowProFool → A2C predictor →
//! adversarial retraining) must reproduce bit-exactly from one `u64`
//! seed, and `StdRng` is the single noise source that guarantees it.

use std::ops::{Range, RangeInclusive};

/// One-line migration target for `use hmd_util::rng::prelude::*;`.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng, SliceRandom, StdRng};
}

// ---------------------------------------------------------------------------
// Core generator traits
// ---------------------------------------------------------------------------

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`next_u64`],
    /// which has the better-distributed bits in xorshift-family
    /// generators).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// A generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A sample from the "standard" distribution of `T`: uniform over
    /// the full domain for integers and `bool`, uniform in `[0, 1)` for
    /// floats.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (or, for floats, not finite).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p = {p} outside [0, 1]");
        // 53-bit uniform in [0, 1); p == 1.0 must always hit.
        p == 1.0 || self.random::<f64>() < p
    }

    /// A sample from an explicit distribution object.
    fn sample<T, D: Distribution<T>>(&mut self, distribution: &D) -> T
    where
        Self: Sized,
    {
        distribution.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

// ---------------------------------------------------------------------------
// SplitMix64
// ---------------------------------------------------------------------------

/// SplitMix64 (Steele, Lea & Flood): a tiny generator whose only job
/// here is seed expansion — it turns one `u64` into the four
/// well-mixed words of xoshiro state, so that seeds 0, 1, 2, …
/// produce unrelated streams.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A SplitMix64 stream starting from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

// ---------------------------------------------------------------------------
// xoshiro256++ — the workspace's standard generator
// ---------------------------------------------------------------------------

/// The workspace's standard generator: xoshiro256++ seeded via
/// SplitMix64.
///
/// 256 bits of state, period 2²⁵⁶ − 1, a few ALU ops per draw, and —
/// unlike the upstream `rand::rngs::StdRng` whose algorithm is
/// explicitly unstable across versions — a stream that is frozen
/// forever by the known-answer tests in this module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// A generator whose entire stream is determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Self { s: [mix.next_u64(), mix.next_u64(), mix.next_u64(), mix.next_u64()] }
    }

    /// A generator from raw xoshiro state.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state (the one fixed point of the
    /// transition function).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256++ state must be non-zero");
        Self { s }
    }

    /// The raw xoshiro state (for checkpointing).
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self::seed_from_u64(seed)
    }
}

// ---------------------------------------------------------------------------
// Standard (full-domain / unit-interval) sampling
// ---------------------------------------------------------------------------

/// Types with a canonical "standard" distribution ([`Rng::random`]).
pub trait StandardUniform: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// `f64` uniform in `[0, 1)` with full 53-bit mantissa resolution.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit; low bits are the weakest in xorshift families.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_uniform_int {
    ($($t:ty),+) => {$(
        impl StandardUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardUniform for i128 {
    #[allow(clippy::cast_possible_wrap)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

// ---------------------------------------------------------------------------
// Ranged uniform sampling
// ---------------------------------------------------------------------------

/// Unbiased uniform draw from `[0, n)` by rejection (Lemire-style
/// threshold on the raw 64-bit word — no modulo bias).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // 2^64 mod n: raw words below this threshold would over-represent
    // the low residues, so reject them.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        if x >= threshold {
            return x % n;
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! sample_uniform_unsigned {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                low + uniform_u64_below(rng, (high - low) as u64) as $t
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high - low) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )+};
}
sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! sample_uniform_signed {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // Two's complement: for low < high the span fits in u64.
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )+};
}
sample_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let v = low + (high - low) * unit_f64(rng);
        // Guard the rounding edge: low + span * u can round up to high.
        if v < high {
            v
        } else {
            high.next_down().max(low)
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (low + (high - low) * u).clamp(low, high)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        let v = f64::sample_half_open(rng, f64::from(low), f64::from(high)) as f32;
        if v < high {
            v
        } else {
            high.next_down().max(low)
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        let v = f64::sample_inclusive(rng, f64::from(low), f64::from(high)) as f32;
        v.clamp(low, high)
    }
}

/// Range-like arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy + std::fmt::Debug> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range {:?}..{:?}", self.start, self.end);
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy + std::fmt::Debug> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "random_range: empty range {low:?}..={high:?}");
        T::sample_inclusive(rng, low, high)
    }
}

// ---------------------------------------------------------------------------
// Slice helpers
// ---------------------------------------------------------------------------

/// In-place shuffling and element selection for slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle: every permutation equally likely.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            #[allow(clippy::cast_possible_truncation)]
            let j = uniform_u64_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            #[allow(clippy::cast_possible_truncation)]
            let i = uniform_u64_below(rng, self.len() as u64) as usize;
            Some(&self[i])
        }
    }
}

// ---------------------------------------------------------------------------
// Normal distribution (Box–Muller)
// ---------------------------------------------------------------------------

/// Gaussian sampler via the Box–Muller transform.
///
/// # Example
///
/// ```
/// use hmd_util::rng::{Normal, StdRng};
///
/// let normal = Normal::new(10.0, 2.0);
/// let mut rng = StdRng::seed_from_u64(0);
/// let x = normal.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics for a negative or non-finite standard deviation.
    #[must_use]
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev >= 0.0 && std_dev.is_finite(), "std dev must be finite, non-negative");
        Self { mean, std_dev }
    }

    /// The distribution's mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution's standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: avoid u == 0 so ln() stays finite.
        let u: f64 = loop {
            let u = unit_f64(rng);
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let v = unit_f64(rng);
        let z = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        self.mean + self.std_dev * z
    }

    /// Draws one sample clamped to `[lo, hi]` (truncated by rejection
    /// with a clamp fallback after 64 tries).
    pub fn sample_clamped<R: RngCore + ?Sized>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        for _ in 0..64 {
            let x = self.sample(rng);
            if (lo..=hi).contains(&x) {
                return x;
            }
        }
        self.sample(rng).clamp(lo, hi)
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        Normal::sample(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Tests — including the known-answer vectors that freeze the stream
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Published SplitMix64 reference vectors (seed 0), e.g. from the
    /// author's `splitmix64.c` test suite.
    #[test]
    fn splitmix64_known_answers_seed0() {
        let mut mix = SplitMix64::new(0);
        assert_eq!(mix.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(mix.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(mix.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(mix.next_u64(), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn splitmix64_known_answers_seed1() {
        let mut mix = SplitMix64::new(1);
        assert_eq!(mix.next_u64(), 0x910A_2DEC_8902_5CC1);
        assert_eq!(mix.next_u64(), 0xBEEB_8DA1_658E_EC67);
        assert_eq!(mix.next_u64(), 0xF893_A2EE_FB32_555E);
        assert_eq!(mix.next_u64(), 0x71C1_8690_EE42_C90B);
    }

    /// xoshiro256++ with SplitMix64 seeding; the seed-0 head of stream
    /// cross-checks against the `rand_xoshiro` documented value
    /// (`Xoshiro256PlusPlus::seed_from_u64(0)` → `0x53175d61490b23df`).
    #[test]
    fn xoshiro256pp_known_answers_seed0() {
        let mut rng = StdRng::seed_from_u64(0);
        let want: [u64; 6] = [
            0x5317_5D61_490B_23DF,
            0x61DA_6F3D_C380_D507,
            0x5C0F_DF91_EC9A_7BFC,
            0x02EE_BF8C_3BBE_5E1A,
            0x7ECA_04EB_AF4A_5EEA,
            0x0543_C377_57F0_8D9A,
        ];
        for w in want {
            assert_eq!(rng.next_u64(), w);
        }
    }

    #[test]
    fn xoshiro256pp_known_answers_seed1() {
        let mut rng = StdRng::seed_from_u64(1);
        let want: [u64; 6] = [
            0xCFC5_D07F_6F03_C29B,
            0xBF42_4132_963F_E08D,
            0x19A3_7D57_57AA_F520,
            0xBF08_119F_05CD_56D6,
            0x2F47_184B_8618_6FA4,
            0x9729_9FCA_E720_2345,
        ];
        for w in want {
            assert_eq!(rng.next_u64(), w);
        }
    }

    /// The repo's canonical corpus seed, frozen so corpus regeneration
    /// can never silently drift.
    #[test]
    fn xoshiro256pp_known_answers_dac_seed() {
        let mut rng = StdRng::seed_from_u64(0x0DAC_2024);
        assert_eq!(rng.next_u64(), 0x93D1_C081_C414_EF8F);
        assert_eq!(rng.next_u64(), 0x3945_2D14_A1D9_978E);
        assert_eq!(rng.next_u64(), 0xFE77_F247_87AD_39AC);
    }

    #[test]
    fn seeding_expands_through_splitmix() {
        let rng = StdRng::seed_from_u64(0);
        assert_eq!(
            rng.state(),
            [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y), "{y} outside [0,1)");
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = rng.random_range(-3.5..7.25);
            assert!((-3.5..7.25).contains(&x));
            let i = rng.random_range(0..17usize);
            assert!(i < 17);
            let s = rng.random_range(-20..=-10i64);
            assert!((-20..=-10).contains(&s));
        }
    }

    #[test]
    fn ranged_integers_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket {i} count {c} far from uniform 10000"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5..5usize);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(10);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "p=0.3 gave {hits}/100000");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn normal_moments_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = Normal::new(5.0, 2.0);
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = Normal::new(0.0, 10.0);
        for _ in 0..500 {
            let x = n.sample_clamped(&mut rng, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "std dev")]
    fn normal_rejects_negative_sigma() {
        let _ = Normal::new(0.0, -1.0);
    }

    /// Fisher–Yates permutation uniformity smoke test: shuffle [0,1,2]
    /// many times; all 6 permutations must appear with roughly equal
    /// frequency (χ² would pass comfortably at these tolerances).
    #[test]
    fn shuffle_permutations_are_uniform() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = std::collections::HashMap::new();
        let trials = 60_000;
        for _ in 0..trials {
            let mut v = [0u8, 1, 2];
            v.shuffle(&mut rng);
            *counts.entry(v).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 6, "not every permutation reached");
        for (perm, c) in counts {
            assert!(
                (9_000..11_000).contains(&c),
                "permutation {perm:?} count {c} far from uniform 10000"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(15);
        let v = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        // Same seed, same bytes.
        let mut rng2 = StdRng::seed_from_u64(16);
        let mut buf2 = [0u8; 13];
        rng2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(17);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }
}
