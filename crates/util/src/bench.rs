//! A micro-benchmark harness: warm-up, iteration calibration,
//! median/p95 statistics, and machine-readable `BENCH_<name>.json`
//! emission.
//!
//! The replacement for the criterion benches: each `[[bench]]` target
//! keeps `harness = false` and drives a [`Harness`] from `fn main`.
//!
//! ```no_run
//! use hmd_util::bench::Harness;
//! use std::hint::black_box;
//!
//! let mut h = Harness::new("example");
//! let xs: Vec<f64> = (0..1024).map(|i| f64::from(i)).collect();
//! h.bench("sum_1024", || black_box(xs.iter().sum::<f64>()));
//! h.finish(); // writes BENCH_example.json, prints a summary table
//! ```
//!
//! Knobs (environment):
//! * `BENCH_OUT_DIR` — where `BENCH_<name>.json` lands (default: cwd);
//! * `HMD_BENCH_FAST=1` — CI smoke mode: tiny warm-up and sample
//!   targets so every bench binary finishes in well under a second.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Timing statistics for one benchmark, in nanoseconds per iteration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Stats {
    /// Arithmetic mean over samples.
    pub mean_ns: f64,
    /// Median (p50) — the headline number; robust to scheduler noise.
    pub median_ns: f64,
    /// 95th percentile — the tail the paper's "overhead" rows care
    /// about.
    pub p95_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Population standard deviation over samples.
    pub std_dev_ns: f64,
}

impl Stats {
    fn from_samples(samples: &mut [f64]) -> Self {
        assert!(!samples.is_empty());
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        Self {
            mean_ns: mean,
            median_ns: percentile(samples, 50.0),
            p95_ns: percentile(samples, 95.0),
            min_ns: samples[0],
            max_ns: samples[n - 1],
            std_dev_ns: var.sqrt(),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Units of work per iteration, for derived throughput reporting.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// One completed benchmark.
#[derive(Clone, Debug)]
struct Record {
    id: String,
    iters_per_sample: u64,
    samples: usize,
    stats: Stats,
    throughput: Option<Throughput>,
}

/// A named collection of benchmarks; [`Harness::finish`] writes
/// `BENCH_<name>.json`.
#[derive(Debug)]
pub struct Harness {
    name: String,
    sample_size: usize,
    warmup: Duration,
    target_sample_time: Duration,
    out_dir: Option<PathBuf>,
    records: Vec<Record>,
}

impl Harness {
    /// A harness whose results land in `BENCH_<name>.json`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains path separators.
    #[must_use]
    pub fn new(name: &str) -> Self {
        assert!(
            !name.is_empty() && !name.contains(['/', '\\']),
            "bench name must be a bare file stem, got {name:?}"
        );
        let fast = std::env::var("HMD_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty());
        Self {
            name: name.to_owned(),
            sample_size: if fast { 10 } else { 30 },
            warmup: if fast { Duration::from_millis(2) } else { Duration::from_millis(60) },
            target_sample_time: if fast {
                Duration::from_micros(200)
            } else {
                Duration::from_millis(2)
            },
            out_dir: None,
            records: Vec::new(),
        }
    }

    /// Sets the number of timed samples per benchmark (default 30, or
    /// 10 under `HMD_BENCH_FAST`).
    ///
    /// # Panics
    ///
    /// Panics for a zero sample size.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Overrides the output directory (default: `BENCH_OUT_DIR` env
    /// var, falling back to the current directory).
    #[must_use]
    pub fn out_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.out_dir = Some(dir.into());
        self
    }

    /// Times `f`, recording per-iteration statistics under `id`.
    ///
    /// The closure's return value is passed through
    /// [`black_box`](std::hint::black_box), so benchmarked expressions
    /// are not optimized away; inputs should still be `black_box`ed at
    /// the call site when they are compile-time constants.
    pub fn bench<T>(&mut self, id: &str, f: impl FnMut() -> T) {
        self.run(id, None, f);
    }

    /// Like [`bench`](Harness::bench), with a throughput denominator
    /// for derived bytes/sec or elements/sec reporting.
    pub fn bench_with_throughput<T>(
        &mut self,
        id: &str,
        throughput: Throughput,
        f: impl FnMut() -> T,
    ) {
        self.run(id, Some(throughput), f);
    }

    /// Records a directly measured scalar (e.g. allocations per window)
    /// under `id` in the same record schema as a timed benchmark: every
    /// statistic equals `value`, the deviation is zero. This lets
    /// non-timing regression gauges ride the existing `BENCH_*.json`
    /// comparison tooling unchanged.
    pub fn record_value(&mut self, id: &str, value: f64) {
        println!("{}/{id}: value {value}", self.name);
        self.records.push(Record {
            id: id.to_owned(),
            iters_per_sample: 1,
            samples: 1,
            stats: Stats {
                mean_ns: value,
                median_ns: value,
                p95_ns: value,
                min_ns: value,
                max_ns: value,
                std_dev_ns: 0.0,
            },
            throughput: None,
        });
    }

    fn run<T>(&mut self, id: &str, throughput: Option<Throughput>, mut f: impl FnMut() -> T) {
        // Warm-up doubles as calibration: count how many iterations fit
        // in the warm-up window to size the timed samples.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.warmup || warmup_iters == 0 {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let target = self.target_sample_time.as_secs_f64();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let iters_per_sample = ((target / per_iter).ceil() as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        let stats = Stats::from_samples(&mut samples);
        println!(
            "{}/{id}: median {} (p95 {}, n={} x {iters_per_sample})",
            self.name,
            format_ns(stats.median_ns),
            format_ns(stats.p95_ns),
            self.sample_size,
        );
        self.records.push(Record {
            id: id.to_owned(),
            iters_per_sample,
            samples: self.sample_size,
            stats,
            throughput,
        });
    }

    /// Writes `BENCH_<name>.json` and returns its path.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written — a bench run whose results
    /// vanish silently is worse than a loud failure.
    pub fn finish(self) -> PathBuf {
        let dir = self
            .out_dir
            .clone()
            .or_else(|| std::env::var_os("BENCH_OUT_DIR").map(PathBuf::from))
            .unwrap_or_else(|| PathBuf::from("."));
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("creating bench output dir {}: {e}", dir.display()));
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let doc = self.to_json();
        std::fs::write(&path, doc.pretty() + "\n")
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote {}", path.display());
        path
    }

    fn to_json(&self) -> Json {
        let benches: Vec<Json> = self.records.iter().map(Record::to_json).collect();
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("unit".to_owned(), Json::Str("ns/iter".to_owned())),
            ("benches".to_owned(), Json::Arr(benches)),
        ])
    }
}

impl Record {
    fn to_json(&self) -> Json {
        let s = &self.stats;
        let mut fields = vec![
            ("id".to_owned(), Json::Str(self.id.clone())),
            ("samples".to_owned(), (self.samples as u64).to_json_u()),
            ("iters_per_sample".to_owned(), self.iters_per_sample.to_json_u()),
            ("mean_ns".to_owned(), Json::Float(s.mean_ns)),
            ("median_ns".to_owned(), Json::Float(s.median_ns)),
            ("p95_ns".to_owned(), Json::Float(s.p95_ns)),
            ("min_ns".to_owned(), Json::Float(s.min_ns)),
            ("max_ns".to_owned(), Json::Float(s.max_ns)),
            ("std_dev_ns".to_owned(), Json::Float(s.std_dev_ns)),
        ];
        if let Some(tp) = self.throughput {
            let (kind, units) = match tp {
                Throughput::Bytes(n) => ("bytes", n),
                Throughput::Elements(n) => ("elements", n),
            };
            #[allow(clippy::cast_precision_loss)]
            let per_sec = if s.median_ns > 0.0 { units as f64 * 1e9 / s.median_ns } else { 0.0 };
            fields.push(("throughput_kind".to_owned(), Json::Str(kind.to_owned())));
            fields.push(("throughput_units".to_owned(), units.to_json_u()));
            fields.push((format!("{kind}_per_sec"), Json::Float(per_sec)));
        }
        Json::Obj(fields)
    }
}

// Small helper so u64 counters serialize through the same path.
trait ToJsonU {
    fn to_json_u(self) -> Json;
}
impl ToJsonU for u64 {
    fn to_json_u(self) -> Json {
        match i64::try_from(self) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::UInt(self),
        }
    }
}

/// Human-readable duration with three significant figures.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Reads a `BENCH_*.json` file back (used by tests and tooling that
/// compares runs).
///
/// # Errors
///
/// Returns an error string if the file is unreadable or not valid
/// JSON.
pub fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&sorted, 50.0), 5.0);
        assert_eq!(percentile(&sorted, 95.0), 10.0);
        assert_eq!(percentile(&sorted, 100.0), 10.0);
        assert_eq!(percentile(&sorted, 0.1), 1.0);
    }

    #[test]
    fn stats_are_ordered() {
        let mut samples = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let s = Stats::from_samples(&mut samples);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 5.0);
        assert_eq!(s.median_ns, 3.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns && s.p95_ns <= s.max_ns);
        assert!((s.mean_ns - 3.0).abs() < 1e-12);
    }

    #[test]
    fn harness_emits_wellformed_json() {
        let dir = std::env::temp_dir().join(format!("hmd_bench_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut h = Harness::new("selftest").sample_size(3).out_dir(&dir);
        // Keep the workload tiny; correctness of the file is the point.
        let mut acc = 0u64;
        h.bench("count", || {
            acc = acc.wrapping_add(1);
            acc
        });
        h.bench_with_throughput("count_tp", Throughput::Bytes(64), || 0u8);
        let path = h.finish();
        let doc = load(&path).expect("parse emitted file");
        assert_eq!(doc.get("name").unwrap().as_str().unwrap(), "selftest");
        let benches = doc.get("benches").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 2);
        for b in benches {
            assert!(b.get("median_ns").unwrap().as_f64().unwrap() >= 0.0);
            assert!(b.get("p95_ns").unwrap().as_f64().unwrap() >= 0.0);
            assert!(b.get("iters_per_sample").unwrap().as_f64().unwrap() >= 1.0);
        }
        assert_eq!(
            benches[1].get("throughput_kind").unwrap().as_str().unwrap(),
            "bytes"
        );
        assert!(benches[1].get("bytes_per_sec").unwrap().as_f64().unwrap() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_value_round_trips_as_degenerate_stats() {
        let dir = std::env::temp_dir().join(format!("hmd_bench_value_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut h = Harness::new("valuetest").sample_size(3).out_dir(&dir);
        h.record_value("allocs_per_window", 0.0);
        h.record_value("allocs_per_window_legacy", 17.0);
        let path = h.finish();
        let doc = load(&path).expect("parse emitted file");
        let benches = doc.get("benches").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 2);
        for (b, want) in benches.iter().zip([0.0, 17.0]) {
            for key in ["median_ns", "p95_ns", "mean_ns", "min_ns", "max_ns"] {
                assert_eq!(b.get(key).unwrap().as_f64().unwrap(), want, "{key}");
            }
            assert_eq!(b.get("std_dev_ns").unwrap().as_f64().unwrap(), 0.0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "bare file stem")]
    fn rejects_pathy_names() {
        let _ = Harness::new("../escape");
    }
}
