//! A counting global allocator for allocation-freedom tests and
//! benchmarks.
//!
//! [`CountingAllocator`] wraps the system allocator and counts every
//! allocation (and allocated byte) behind relaxed atomics. Register it
//! in a test binary or benchmark:
//!
//! ```ignore
//! use hmd_util::alloc::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! let before = ALLOC.allocations();
//! hot_path();
//! assert_eq!(ALLOC.allocations() - before, 0, "hot path allocated");
//! ```
//!
//! The counters are process-global per registered allocator instance and
//! include allocations from *all* threads, so allocation-freedom
//! assertions should pin background work (or measure deltas on a quiesced
//! process). When not registered as `#[global_allocator]` the type is
//! inert — it costs nothing to ship in the library.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] delegating to [`System`] while counting calls.
///
/// `realloc` counts as one allocation (it may move), `dealloc` is
/// tracked separately so leak-shaped deltas remain visible.
#[derive(Debug)]
pub struct CountingAllocator {
    allocations: AtomicU64,
    deallocations: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAllocator {
    /// A fresh allocator with zeroed counters.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            allocations: AtomicU64::new(0),
            deallocations: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Total `alloc`/`realloc` calls since process start.
    #[must_use]
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Total `dealloc` calls since process start.
    #[must_use]
    pub fn deallocations(&self) -> u64 {
        self.deallocations.load(Ordering::Relaxed)
    }

    /// Total bytes requested by `alloc`/`realloc` since process start.
    #[must_use]
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: pure delegation to `System`; the counters are relaxed atomics
// with no side effects on the allocation itself.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_through_the_global_alloc_interface() {
        let a = CountingAllocator::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        // SAFETY: valid layout; freed with the same layout below.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p = a.realloc(p, layout, 128);
            assert!(!p.is_null());
            let grown = Layout::from_size_align(128, 8).unwrap();
            a.dealloc(p, grown);
            let z = a.alloc_zeroed(layout);
            assert!(!z.is_null());
            assert_eq!(*z, 0);
            a.dealloc(z, layout);
        }
        assert_eq!(a.allocations(), 3);
        assert_eq!(a.deallocations(), 2);
        assert_eq!(a.bytes_allocated(), 64 + 128 + 64);
    }

    #[test]
    fn fresh_allocator_is_zeroed() {
        let a = CountingAllocator::default();
        assert_eq!(a.allocations(), 0);
        assert_eq!(a.deallocations(), 0);
        assert_eq!(a.bytes_allocated(), 0);
    }
}
