//! Zero-dependency data-parallel execution over [`std::thread::scope`].
//!
//! The workspace is hermetic (no rayon), so every hot loop — per-tree
//! forest fitting, batch prediction, LowProFool perturbation, MI
//! ranking, corpus generation, the blocked matmul — shares this one
//! substrate instead of hand-rolling scopes.
//!
//! # Determinism contract
//!
//! Every function here is **order-preserving**: results are concatenated
//! (or reduced) in input order, and work is partitioned into contiguous
//! chunks whose per-item computation never depends on which chunk it
//! landed in. A closure that is itself deterministic per item therefore
//! produces byte-identical output at any thread count — the property the
//! determinism suite enforces for corpora, forests and attacks.
//!
//! # Worker count
//!
//! [`max_threads`] resolves, in priority order:
//!
//! 1. a process-local override installed via [`set_thread_override`]
//!    (used by benches and tests to A/B thread counts without touching
//!    the environment);
//! 2. the `HMD_THREADS` environment variable (positive integer);
//! 3. [`std::thread::available_parallelism`].
//!
//! Nested calls never oversubscribe: a parallel region entered from
//! inside a worker thread runs sequentially on that worker.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Process-wide worker-count override; `0` means "no override".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// An optional `(capture, install)` pair propagating a caller-defined
/// thread-context token (e.g. a telemetry span id) into workers: the
/// spawning thread's `capture()` result is handed to `install(token)`
/// on every worker before it runs its chunk. Workers are fresh scoped
/// threads, so without this hook any thread-local context is lost at
/// the region boundary.
///
/// The token is observational only — it must not influence the work —
/// so installing a hook never affects results or determinism.
static CONTEXT_HOOK: OnceLock<ContextHook> = OnceLock::new();

/// A `(capture, install)` context-propagation pair (see [`set_context_hook`]).
type ContextHook = (fn() -> u64, fn(u64));

/// Registers the context-propagation hook. The first registration wins;
/// later calls are ignored (the hook is installed once per process by
/// the observability layer).
pub fn set_context_hook(capture: fn() -> u64, install: fn(u64)) {
    let _ = CONTEXT_HOOK.set((capture, install));
}

/// The spawning thread's context token (0 when no hook is installed).
fn capture_context() -> u64 {
    CONTEXT_HOOK.get().map_or(0, |(capture, _)| capture())
}

/// Installs a captured token on a worker thread.
fn install_context(token: u64) {
    if token != 0 {
        if let Some((_, install)) = CONTEXT_HOOK.get() {
            install(token);
        }
    }
}

thread_local! {
    /// Set while executing inside a worker, so nested parallel regions
    /// degrade to sequential execution instead of oversubscribing.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Installs (or clears, with `None`) a process-wide worker-count
/// override that takes precedence over `HMD_THREADS`.
///
/// Because every `par` entry point is deterministic across thread
/// counts, flipping the override concurrently with other work changes
/// scheduling but never results.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count parallel regions will use: override, then
/// `HMD_THREADS`, then available parallelism (min 1).
#[must_use]
pub fn max_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("HMD_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Splits `n` items into at most `threads` contiguous chunks, each a
/// multiple of `granule` long (except possibly the last).
fn chunk_len(n: usize, threads: usize, granule: usize) -> usize {
    let granule = granule.max(1);
    let granules = n.div_ceil(granule);
    granules.div_ceil(threads.max(1)).max(1) * granule
}

/// Runs `f` over contiguous chunks of `items`, in parallel, invoking
/// `f(chunk_start_index, chunk)` and concatenating the returned vectors
/// in input order.
///
/// This is the primitive the item-level maps are built on; call it
/// directly when workers benefit from per-chunk state (e.g. a reusable
/// scratch buffer).
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_chunk_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    par_chunk_map_with(max_threads(), items, f)
}

/// [`par_chunk_map`] with an explicit worker count, for callers with
/// their own threading knob (e.g. the corpus builder's `threads`
/// field). `threads == 0` falls back to [`max_threads`].
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_chunk_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 { max_threads() } else { threads }.min(n);
    if threads == 1 || IN_WORKER.with(Cell::get) {
        return f(0, items);
    }
    let chunk = chunk_len(n, threads, 1);
    let context = capture_context();
    let mut partials: Vec<Vec<R>> = thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, chunk_items)| {
                scope.spawn(move || {
                    install_context(context);
                    IN_WORKER.with(|w| w.set(true));
                    f(ci * chunk, chunk_items)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("par worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(partials.iter().map(Vec::len).sum());
    for partial in &mut partials {
        out.append(partial);
    }
    out
}

/// Parallel, order-preserving map: `out[i] = f(&items[i])`.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_chunk_map(items, |_, chunk| chunk.iter().map(&f).collect())
}

/// Parallel, order-preserving map with the item index: `out[i] =
/// f(i, &items[i])` — the index is what seeded workloads derive their
/// per-item RNG streams from.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_chunk_map(items, |start, chunk| {
        chunk.iter().enumerate().map(|(j, item)| f(start + j, item)).collect()
    })
}

/// Parallel map followed by a **sequential, input-order** reduce, so
/// floating-point reductions stay byte-identical at any thread count.
/// Returns `None` for empty input.
///
/// # Panics
///
/// Propagates panics from `map` / `reduce`.
pub fn par_map_reduce<T, A, M, R>(items: &[T], map: M, reduce: R) -> Option<A>
where
    T: Sync,
    A: Send,
    M: Fn(&T) -> A + Sync,
    R: Fn(A, A) -> A,
{
    par_map(items, map).into_iter().reduce(reduce)
}

/// Runs `f(offset, chunk)` over disjoint mutable chunks of `items` in
/// parallel. Chunk lengths are multiples of `granule` (except possibly
/// the last), so a flat row-major matrix can be split on row boundaries
/// by passing its column count.
///
/// # Panics
///
/// Panics if `granule` is zero; propagates panics from `f`.
pub fn par_for_chunks<T, F>(items: &mut [T], granule: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(granule > 0, "granule must be positive");
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = max_threads().min(n.div_ceil(granule));
    if threads <= 1 || IN_WORKER.with(Cell::get) {
        f(0, items);
        return;
    }
    let chunk = chunk_len(n, threads, granule);
    let context = capture_context();
    thread::scope(|scope| {
        let f = &f;
        for (ci, chunk_items) in items.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                install_context(context);
                IN_WORKER.with(|w| w.set(true));
                f(ci * chunk, chunk_items);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` with a temporary worker-count override, restoring the
    /// previous override afterwards.
    fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
        let prev = THREAD_OVERRIDE.swap(threads, Ordering::Relaxed);
        let out = f();
        THREAD_OVERRIDE.store(prev, Ordering::Relaxed);
        out
    }

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|v| v * 3 + 1).collect();
        for threads in [1, 2, 3, 7, 64] {
            let got = with_threads(threads, || par_map(&items, |&v| v * 3 + 1));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn indexed_map_sees_global_indices() {
        let items = vec![10usize; 257];
        let got = with_threads(4, || par_map_indexed(&items, |i, &v| i + v));
        let expect: Vec<usize> = (0..257).map(|i| i + 10).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn chunk_map_offsets_cover_input_exactly_once() {
        let items: Vec<i32> = (0..100).collect();
        let got = with_threads(8, || {
            par_chunk_map(&items, |start, chunk| {
                chunk.iter().enumerate().map(|(j, &v)| (start + j, v)).collect()
            })
        });
        for (i, (idx, v)) in got.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*v, i as i32);
        }
    }

    #[test]
    fn map_reduce_is_sequential_in_input_order() {
        let items: Vec<f64> = (0..500).map(|i| f64::from(i) * 0.1).collect();
        let seq: f64 = items.iter().map(|v| v * v).fold(0.0, |a, b| a + b);
        for threads in [1, 3, 16] {
            let par = with_threads(threads, || {
                par_map_reduce(&items, |v| v * v, |a, b| a + b).unwrap()
            });
            // bitwise equality: the reduce order never changes
            assert_eq!(par.to_bits(), seq.to_bits(), "threads={threads}");
        }
        assert_eq!(par_map_reduce(&[] as &[f64], |v| *v, |a, b| a + b), None);
    }

    #[test]
    fn for_chunks_respects_granule_boundaries() {
        let cols = 7;
        let mut data = vec![0usize; cols * 23];
        with_threads(4, || {
            par_for_chunks(&mut data, cols, |offset, chunk| {
                assert_eq!(offset % cols, 0, "chunk start off row boundary");
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = offset + j;
                }
            });
        });
        let expect: Vec<usize> = (0..cols * 23).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn empty_inputs_are_noops() {
        assert!(par_map(&[] as &[u8], |&v| v).is_empty());
        let mut empty: [u8; 0] = [];
        par_for_chunks(&mut empty, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn nested_regions_run_sequentially() {
        let outer: Vec<usize> = (0..8).collect();
        let got = with_threads(4, || {
            par_map(&outer, |&i| {
                // nested call inside a worker: must not deadlock or
                // oversubscribe, and must preserve order
                let inner: Vec<usize> = (0..10).collect();
                par_map(&inner, |&j| i * 100 + j).iter().sum::<usize>()
            })
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..10).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn override_beats_env_and_is_restorable() {
        set_thread_override(Some(3));
        assert_eq!(max_threads(), 3);
        set_thread_override(None);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn chunk_len_is_granule_aligned() {
        assert_eq!(chunk_len(100, 4, 1), 25);
        assert_eq!(chunk_len(10, 4, 7), 7); // 2 granules over 4 threads → 1 granule each
        assert_eq!(chunk_len(21, 2, 7), 14);
        assert!(chunk_len(1, 8, 1) >= 1);
    }
}
