//! Zero-dependency utility substrate for the HMD workspace.
//!
//! Every crate in this workspace builds offline, from an empty cargo
//! registry. This crate owns the four capabilities that previously
//! pulled external dependencies:
//!
//! * [`rng`] — deterministic pseudo-randomness (SplitMix64 seeding, a
//!   xoshiro256++ core, uniform/normal sampling, Fisher–Yates shuffle)
//!   behind the same API surface the `rand` prelude offered, so call
//!   sites migrate with a one-line import swap;
//! * [`json`] — a minimal JSON value model, serializer and parser, plus
//!   the derive-free [`impl_json!`](crate::impl_json) /
//!   [`impl_to_json!`](crate::impl_to_json) macros replacing
//!   `#[derive(Serialize, Deserialize)]`;
//! * [`proptest_lite`] — seeded property-based testing with
//!   shrink-on-failure, replacing `proptest`;
//! * [`bench`] — a micro-benchmark harness (warm-up, calibration,
//!   median/p95, `BENCH_<name>.json` emission), replacing `criterion`;
//! * [`par`] — scoped, chunked, order-preserving data parallelism over
//!   [`std::thread::scope`], replacing `rayon`: every hot loop in the
//!   workspace (forest fitting, batch prediction, attack crafting, MI
//!   ranking, corpus generation, blocked matmul) shares this substrate
//!   and stays byte-identical at any `HMD_THREADS` setting.
//!
//! The sampling pipeline the paper describes (LowProFool attack
//! generation → A2C adversarial prediction → adversarial retraining) is
//! seeded end to end; owning the noise source is what makes two
//! same-seed runs byte-identical regardless of platform, `rand` version
//! or registry availability.

pub mod alloc;
pub mod bench;
pub mod json;
pub mod par;
pub mod proptest_lite;
pub mod rng;
