//! ML model integrity validation (paper §2.7).
//!
//! The framework protects deployed defense models against tampering with
//! two complementary mechanisms:
//!
//! * [`sha256`] / [`ModelRegistry`] — a from-scratch SHA-256 (FIPS 180-4,
//!   verified against the NIST test vectors) fingerprints each deployed
//!   model's bytes together with its deployment timestamp; periodic
//!   verification compares fresh digests against the stored records.
//! * [`MetricMonitor`] — baseline accuracy/F1/TPR/FPR/TNR/FNR measured on
//!   a reserved offline validation set; metric drift beyond a tolerance
//!   indicates possible model alteration and triggers restoration.
//!
//! # Example
//!
//! ```
//! use hmd_integrity::{ModelRegistry, sha256::sha256};
//!
//! let registry = ModelRegistry::new();
//! registry.register("MLP", b"weights...", 1_700_000_000);
//! assert!(registry.verify("MLP", b"weights...").is_verified());
//! println!("digest: {}", sha256(b"weights..."));
//! ```

pub mod monitor;
pub mod registry;
pub mod sha256;

pub use monitor::{DriftEvent, MetricDeviation, MetricMonitor, MetricStatus};
pub use registry::{DeploymentRecord, IntegrityStatus, ModelRegistry};
pub use sha256::{sha256 as sha256_digest, Digest, Sha256};
