//! The metric monitor (paper §2.7): baseline performance records on a
//! reserved offline validation set, with drift detection.
//!
//! Besides hashing, the paper periodically re-evaluates each deployed
//! model on a held-out validation set and compares accuracy, F1, TPR,
//! FPR, TNR and FNR against established records; deviations indicate
//! possible tampering and trigger restoration of the verified model.

use std::collections::HashMap;

use std::sync::{PoisonError, RwLock};

use hmd_ml::{BinaryMetrics, ConfusionMatrix};
use hmd_util::impl_to_json;
use hmd_util::json::{Json, ToJson};

/// Verdict of one metric assessment.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricStatus {
    /// All monitored metrics within tolerance of the baseline.
    Stable,
    /// One or more metrics drifted; each entry names the metric with its
    /// baseline and observed value.
    Drifted(Vec<MetricDeviation>),
    /// No baseline recorded for this model.
    Unknown,
}

/// One out-of-tolerance metric.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDeviation {
    /// Metric name (`"accuracy"`, `"f1"`, `"tpr"`, `"fpr"`, `"tnr"`,
    /// `"fnr"`).
    pub metric: &'static str,
    /// Recorded baseline value.
    pub baseline: f64,
    /// Currently observed value.
    pub observed: f64,
}

impl_to_json!(struct MetricDeviation { metric, baseline, observed });

impl ToJson for MetricStatus {
    fn to_json(&self) -> Json {
        match self {
            MetricStatus::Stable => {
                Json::Obj(vec![("status".to_owned(), Json::Str("stable".to_owned()))])
            }
            MetricStatus::Drifted(deviations) => Json::Obj(vec![
                ("status".to_owned(), Json::Str("drifted".to_owned())),
                ("deviations".to_owned(), deviations.to_json()),
            ]),
            MetricStatus::Unknown => {
                Json::Obj(vec![("status".to_owned(), Json::Str("unknown".to_owned()))])
            }
        }
    }
}

/// One full assessment outcome: which model was checked, what the
/// verdict was, and under which tolerance — the structured record the
/// monitor also publishes as an `integrity.drift` telemetry event.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftEvent {
    /// The assessed model's name.
    pub model: String,
    /// Verdict, with per-metric deltas when drifted.
    pub status: MetricStatus,
    /// Absolute tolerance the assessment used.
    pub tolerance: f64,
}

impl DriftEvent {
    /// `true` only when the verdict is [`MetricStatus::Stable`].
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.status.is_stable()
    }

    /// The out-of-tolerance metrics (empty when stable or unknown).
    #[must_use]
    pub fn deviations(&self) -> &[MetricDeviation] {
        match &self.status {
            MetricStatus::Drifted(devs) => devs,
            _ => &[],
        }
    }
}

impl ToJson for DriftEvent {
    fn to_json(&self) -> Json {
        let mut fields = vec![("model".to_owned(), Json::Str(self.model.clone()))];
        if let Json::Obj(status_fields) = self.status.to_json() {
            fields.extend(status_fields);
        }
        fields.push(("tolerance".to_owned(), Json::Float(self.tolerance)));
        Json::Obj(fields)
    }
}

/// Thread-safe monitor of per-model baseline metrics.
///
/// # Example
///
/// ```
/// use hmd_integrity::MetricMonitor;
/// use hmd_ml::BinaryMetrics;
///
/// let monitor = MetricMonitor::new(0.05);
/// let baseline = BinaryMetrics { accuracy: 0.9, f1: 0.9, ..Default::default() };
/// monitor.record_baseline("MLP", baseline);
/// assert!(monitor.assess("MLP", &baseline).is_stable());
/// ```
#[derive(Debug)]
pub struct MetricMonitor {
    baselines: RwLock<HashMap<String, BinaryMetrics>>,
    tolerance: f64,
}

impl MetricStatus {
    /// `true` only for [`MetricStatus::Stable`].
    #[must_use]
    pub fn is_stable(&self) -> bool {
        matches!(self, MetricStatus::Stable)
    }
}

impl MetricMonitor {
    /// A monitor flagging metrics that deviate more than `tolerance`
    /// (absolute) from their baselines.
    ///
    /// # Panics
    ///
    /// Panics for a negative tolerance.
    #[must_use]
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        Self { baselines: RwLock::new(HashMap::new()), tolerance }
    }

    /// Locks the baselines for reading, recovering from poisoning:
    /// baseline writes are single `HashMap::insert` calls, never torn.
    fn baselines_read(
        &self,
    ) -> std::sync::RwLockReadGuard<'_, HashMap<String, BinaryMetrics>> {
        self.baselines.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records (or replaces) a model's baseline metrics.
    pub fn record_baseline(&self, name: &str, metrics: BinaryMetrics) {
        self.baselines
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_owned(), metrics);
    }

    /// Compares freshly measured metrics against the stored baseline,
    /// producing the full [`DriftEvent`] record. When telemetry is
    /// enabled the event is also published as a structured
    /// `integrity.drift` trace event, and per-verdict counters
    /// (`integrity.assessments`, `integrity.drifts`) are bumped.
    #[must_use]
    pub fn assess(&self, name: &str, observed: &BinaryMetrics) -> DriftEvent {
        let status = {
            let baselines = self.baselines_read();
            match baselines.get(name) {
                None => MetricStatus::Unknown,
                Some(base) => {
                    let pairs: [(&'static str, f64, f64); 6] = [
                        ("accuracy", base.accuracy, observed.accuracy),
                        ("f1", base.f1, observed.f1),
                        ("tpr", base.tpr, observed.tpr),
                        ("fpr", base.fpr, observed.fpr),
                        ("tnr", base.tnr, observed.tnr),
                        ("fnr", base.fnr, observed.fnr),
                    ];
                    let deviations: Vec<MetricDeviation> = pairs
                        .into_iter()
                        .filter(|(_, b, o)| (b - o).abs() > self.tolerance)
                        .map(|(metric, baseline, observed)| MetricDeviation {
                            metric,
                            baseline,
                            observed,
                        })
                        .collect();
                    if deviations.is_empty() {
                        MetricStatus::Stable
                    } else {
                        MetricStatus::Drifted(deviations)
                    }
                }
            }
        };
        let event = DriftEvent { model: name.to_owned(), status, tolerance: self.tolerance };
        if hmd_telemetry::enabled() {
            hmd_telemetry::metrics::counter("integrity.assessments").inc();
            if !event.is_stable() {
                hmd_telemetry::metrics::counter("integrity.drifts").inc();
            }
            hmd_telemetry::event("integrity.drift", event.to_json());
        }
        event
    }

    /// [`assess`](Self::assess) from raw confusion counts — the form an
    /// online serving window produces. Derives accuracy/F1/rates from
    /// the matrix; AUC is unavailable without scores and left at `0.0`,
    /// which the assessment never compares.
    #[must_use]
    pub fn assess_confusion(&self, name: &str, matrix: &ConfusionMatrix) -> DriftEvent {
        self.assess(name, &BinaryMetrics::from_confusion(matrix))
    }

    /// Allocation-free stability probe: `Some(true)` when every metric
    /// [`assess`](Self::assess) monitors is within tolerance of the
    /// baseline, `Some(false)` on drift, `None` without a baseline.
    /// Verdict-identical to `assess(name, observed).is_stable()` (with
    /// `None` mapping to the non-stable `Unknown`), but builds no
    /// [`DriftEvent`], touches no telemetry, and performs zero heap
    /// allocations — the probe the serving hot path runs every
    /// integrity tick, falling back to the full assessment only when it
    /// reports drift or tracing is on.
    #[must_use]
    pub fn is_stable(&self, name: &str, observed: &BinaryMetrics) -> Option<bool> {
        let baselines = self.baselines_read();
        let base = baselines.get(name)?;
        let pairs = [
            (base.accuracy, observed.accuracy),
            (base.f1, observed.f1),
            (base.tpr, observed.tpr),
            (base.fpr, observed.fpr),
            (base.tnr, observed.tnr),
            (base.fnr, observed.fnr),
        ];
        Some(pairs.iter().all(|(b, o)| (b - o).abs() <= self.tolerance))
    }

    /// [`is_stable`](Self::is_stable) from raw confusion counts — the
    /// allocation-free counterpart of
    /// [`assess_confusion`](Self::assess_confusion).
    #[must_use]
    pub fn confusion_is_stable(&self, name: &str, matrix: &ConfusionMatrix) -> Option<bool> {
        self.is_stable(name, &BinaryMetrics::from_confusion(matrix))
    }

    /// The stored baseline for a model, if any.
    #[must_use]
    pub fn baseline(&self, name: &str) -> Option<BinaryMetrics> {
        self.baselines_read().get(name).copied()
    }

    /// The configured tolerance.
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(acc: f64, f1: f64) -> BinaryMetrics {
        BinaryMetrics { accuracy: acc, f1, tpr: 0.9, fpr: 0.1, tnr: 0.9, fnr: 0.1, ..Default::default() }
    }

    #[test]
    fn stable_within_tolerance() {
        let m = MetricMonitor::new(0.05);
        m.record_baseline("RF", metrics(0.90, 0.90));
        assert!(m.assess("RF", &metrics(0.93, 0.88)).is_stable());
    }

    #[test]
    fn drift_is_reported_per_metric() {
        let m = MetricMonitor::new(0.05);
        m.record_baseline("RF", metrics(0.90, 0.90));
        let event = m.assess("RF", &metrics(0.60, 0.89));
        assert_eq!(event.model, "RF");
        assert!((event.tolerance - 0.05).abs() < 1e-12);
        match &event.status {
            MetricStatus::Drifted(devs) => {
                assert_eq!(devs.len(), 1);
                assert_eq!(devs[0].metric, "accuracy");
                assert!((devs[0].observed - 0.60).abs() < 1e-12);
            }
            other => panic!("expected drift, got {other:?}"),
        }
        assert_eq!(event.deviations().len(), 1);
    }

    #[test]
    fn missing_baseline_reports_unknown_not_stable() {
        let m = MetricMonitor::new(0.05);
        let event = m.assess("ghost", &metrics(0.9, 0.9));
        assert_eq!(event.status, MetricStatus::Unknown);
        assert!(!event.is_stable());
        assert!(event.deviations().is_empty());
        assert_eq!(event.model, "ghost");
    }

    #[test]
    fn multiple_drifts_collected() {
        let m = MetricMonitor::new(0.02);
        m.record_baseline("DT", metrics(0.9, 0.9));
        let observed = BinaryMetrics {
            accuracy: 0.5,
            f1: 0.4,
            tpr: 0.3,
            fpr: 0.6,
            tnr: 0.4,
            fnr: 0.7,
            ..Default::default()
        };
        let event = m.assess("DT", &observed);
        match &event.status {
            MetricStatus::Drifted(devs) => assert_eq!(devs.len(), 6),
            other => panic!("expected drift, got {other:?}"),
        }
        assert_eq!(event.deviations().len(), 6);
    }

    #[test]
    fn drift_event_serializes_with_model_status_and_tolerance() {
        use hmd_util::json::ToJson;
        let m = MetricMonitor::new(0.05);
        m.record_baseline("RF", metrics(0.9, 0.9));
        let json = m.assess("RF", &metrics(0.6, 0.9)).to_json().to_string();
        assert!(json.contains("\"model\":\"RF\""), "{json}");
        assert!(json.contains("\"status\":\"drifted\""), "{json}");
        assert!(json.contains("\"tolerance\":"), "{json}");
        assert!(json.contains("\"deviations\":"), "{json}");
    }

    #[test]
    fn confusion_assessment_matches_derived_metrics() {
        let m = MetricMonitor::new(0.05);
        // baseline: perfect detector
        m.record_baseline(
            "RF",
            BinaryMetrics {
                accuracy: 1.0,
                f1: 1.0,
                tpr: 1.0,
                fpr: 0.0,
                tnr: 1.0,
                fnr: 0.0,
                ..Default::default()
            },
        );
        let perfect = ConfusionMatrix { tp: 10, fp: 0, tn: 10, fn_: 0 };
        assert!(m.assess_confusion("RF", &perfect).is_stable());
        // half the attacks slip through: tpr collapses to 0.5
        let degraded = ConfusionMatrix { tp: 5, fp: 0, tn: 10, fn_: 5 };
        let event = m.assess_confusion("RF", &degraded);
        assert!(!event.is_stable());
        assert!(event.deviations().iter().any(|d| d.metric == "tpr"));
    }

    #[test]
    fn is_stable_probe_matches_full_assessment() {
        let m = MetricMonitor::new(0.05);
        assert_eq!(m.is_stable("ghost", &metrics(0.9, 0.9)), None);
        m.record_baseline("RF", metrics(0.90, 0.90));
        for observed in [metrics(0.93, 0.88), metrics(0.60, 0.89), metrics(0.90, 0.90)] {
            assert_eq!(
                m.is_stable("RF", &observed),
                Some(m.assess("RF", &observed).is_stable()),
            );
        }
        let degraded = ConfusionMatrix { tp: 5, fp: 0, tn: 10, fn_: 5 };
        assert_eq!(
            m.confusion_is_stable("RF", &degraded),
            Some(m.assess_confusion("RF", &degraded).is_stable()),
        );
    }

    #[test]
    fn zero_tolerance_flags_any_change() {
        let m = MetricMonitor::new(0.0);
        m.record_baseline("LR", metrics(0.9, 0.9));
        assert!(!m.assess("LR", &metrics(0.9000001, 0.9)).is_stable());
        assert!(m.assess("LR", &metrics(0.9, 0.9)).is_stable());
    }
}
