//! The model integrity registry (paper §2.7): SHA-256 fingerprints of
//! deployed models, combined with deployment timestamps, verified
//! periodically against stored records.

use std::collections::HashMap;

use std::sync::RwLock;

use crate::sha256::{Digest, Sha256};

/// A recorded deployment: fingerprint + timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeploymentRecord {
    /// Digest of the model bytes combined with the deployment timestamp.
    pub digest: Digest,
    /// Deployment timestamp (seconds since an arbitrary epoch).
    pub deployed_at: u64,
}

/// Result of an integrity check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntegrityStatus {
    /// Fingerprint matches the stored record.
    Verified,
    /// Fingerprint differs — the model was altered since deployment.
    Tampered {
        /// The stored fingerprint.
        expected: Digest,
        /// The fingerprint computed now.
        actual: Digest,
    },
    /// No record exists for this model name.
    Unknown,
}

/// Thread-safe registry of deployed-model fingerprints.
///
/// # Example
///
/// ```
/// use hmd_integrity::ModelRegistry;
///
/// let registry = ModelRegistry::new();
/// registry.register("MLP", b"model bytes", 1_700_000_000);
/// assert!(registry.verify("MLP", b"model bytes").is_verified());
/// assert!(!registry.verify("MLP", b"tampered bytes").is_verified());
/// ```
#[derive(Debug, Default)]
pub struct ModelRegistry {
    records: RwLock<HashMap<String, DeploymentRecord>>,
}

impl IntegrityStatus {
    /// `true` only for [`IntegrityStatus::Verified`].
    #[must_use]
    pub fn is_verified(&self) -> bool {
        matches!(self, IntegrityStatus::Verified)
    }
}

impl ModelRegistry {
    /// Read-locks the records, recovering from poisoning: registry
    /// writes are single `HashMap::insert` calls, so a poisoned map is
    /// never torn and refusing verification would fail open.
    fn records_read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, DeploymentRecord>> {
        self.records.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

fn fingerprint(model_bytes: &[u8], deployed_at: u64) -> Digest {
    // hash(model bytes ‖ timestamp) — the paper combines the model path
    // with its deployment timestamp; we bind the content instead of the
    // path so byte-level tampering is always caught.
    let mut h = Sha256::new();
    h.update(model_bytes);
    h.update(&deployed_at.to_le_bytes());
    h.finalize()
}

impl ModelRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) a deployed model.
    pub fn register(&self, name: &str, model_bytes: &[u8], deployed_at: u64) {
        let record =
            DeploymentRecord { digest: fingerprint(model_bytes, deployed_at), deployed_at };
        self.records
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(name.to_owned(), record);
    }

    /// Verifies a model's current bytes against its stored record.
    #[must_use]
    pub fn verify(&self, name: &str, model_bytes: &[u8]) -> IntegrityStatus {
        let records = self.records_read();
        let Some(record) = records.get(name) else {
            return IntegrityStatus::Unknown;
        };
        let actual = fingerprint(model_bytes, record.deployed_at);
        if actual == record.digest {
            IntegrityStatus::Verified
        } else {
            IntegrityStatus::Tampered { expected: record.digest, actual }
        }
    }

    /// The stored record for a model, if any.
    #[must_use]
    pub fn record(&self, name: &str) -> Option<DeploymentRecord> {
        self.records_read().get(name).cloned()
    }

    /// Names of all registered models, sorted.
    #[must_use]
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.records_read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records_read().len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records_read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_roundtrip() {
        let r = ModelRegistry::new();
        r.register("RF", b"forest", 100);
        assert_eq!(r.verify("RF", b"forest"), IntegrityStatus::Verified);
    }

    #[test]
    fn detects_tampering() {
        let r = ModelRegistry::new();
        r.register("RF", b"forest", 100);
        match r.verify("RF", b"f0rest") {
            IntegrityStatus::Tampered { expected, actual } => assert_ne!(expected, actual),
            other => panic!("expected tampered, got {other:?}"),
        }
    }

    #[test]
    fn unknown_model() {
        let r = ModelRegistry::new();
        assert_eq!(r.verify("ghost", b""), IntegrityStatus::Unknown);
    }

    #[test]
    fn timestamp_binds_the_fingerprint() {
        let r1 = ModelRegistry::new();
        r1.register("m", b"same bytes", 1);
        let r2 = ModelRegistry::new();
        r2.register("m", b"same bytes", 2);
        assert_ne!(r1.record("m").unwrap().digest, r2.record("m").unwrap().digest);
    }

    #[test]
    fn reregistration_replaces_record() {
        let r = ModelRegistry::new();
        r.register("m", b"v1", 1);
        r.register("m", b"v2", 2);
        assert_eq!(r.len(), 1);
        assert!(r.verify("m", b"v2").is_verified());
        assert!(!r.verify("m", b"v1").is_verified());
    }

    #[test]
    fn names_are_sorted() {
        let r = ModelRegistry::new();
        r.register("b", b"", 0);
        r.register("a", b"", 0);
        assert_eq!(r.model_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn registry_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ModelRegistry>();
    }
}
